package serve

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"manualhijack/internal/challenge"
	"manualhijack/internal/event"
	"manualhijack/internal/risk"
	"manualhijack/internal/stream"
)

// Pipeline is the decision interface the HTTP layer serves. Engine is the
// production implementation; tests substitute gated pipelines to exercise
// backpressure and drain deterministically.
type Pipeline interface {
	Score(att risk.Attempt, p *challenge.Principal) Decision
	RecordOutcome(att risk.Attempt, success bool)
}

// ServerConfig tunes the HTTP front-end.
type ServerConfig struct {
	// MaxInFlight bounds concurrently served score/outcome requests — the
	// backpressure queue. Arrivals beyond the bound wait up to QueueWait
	// for a slot, then get 429. 0 means DefaultMaxInFlight.
	MaxInFlight int
	// QueueWait is how long an over-limit request may wait for a slot
	// before 429. 0 rejects immediately — strict open-loop shedding.
	QueueWait time.Duration
	// RequestTimeout aborts a score/outcome request that exceeds it with
	// 503. 0 means DefaultRequestTimeout.
	RequestTimeout time.Duration
	// BatchTimeout is the per-request timeout for /v1/score.batch, which
	// legitimately runs much longer than a single score (hundreds of
	// logins per round trip). 0 means DefaultBatchTimeout.
	BatchTimeout time.Duration
}

// Defaults for ServerConfig zero values.
const (
	DefaultMaxInFlight    = 1024
	DefaultRequestTimeout = 2 * time.Second
	DefaultBatchTimeout   = 60 * time.Second
)

// maxBodyBytes caps a single score/outcome request body. The real wire
// structs are well under 1 KiB; the cap only exists so a hostile client
// cannot balloon the pooled buffers.
const maxBodyBytes = 1 << 20

// bufPool recycles the request-body and response-encode buffers on the
// score/outcome hot path, so a warmed-up server does zero buffer
// allocations per request.
var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

func getBuf() *[]byte  { return bufPool.Get().(*[]byte) }
func putBuf(b *[]byte) { bufPool.Put(b) }

// readBody reads r's body into buf (growing it as needed) and returns the
// filled slice. Bodies over maxBodyBytes are refused.
func readBody(buf []byte, r *http.Request) ([]byte, error) {
	if r.ContentLength > maxBodyBytes {
		return nil, errors.New("request body too large")
	}
	if n := int(r.ContentLength); n > 0 && cap(buf) < n {
		buf = make([]byte, 0, n)
	}
	for {
		if len(buf) == cap(buf) {
			if cap(buf) >= maxBodyBytes {
				return nil, errors.New("request body too large")
			}
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Body.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return nil, err
		}
	}
}

// Server is the riskd HTTP front-end: /v1/score, /v1/score.batch,
// /v1/outcome, /v1/healthz, /v1/statz.
type Server struct {
	pipe    Pipeline
	cfg     ServerConfig
	metrics *Metrics
	sem     chan struct{}
	mux     *http.ServeMux
	// retryAfter is the precomputed Retry-After value for 429 responses,
	// derived from QueueWait: a client that already waited the full queue
	// window should back off at least that long before retrying.
	retryAfter string
	// stream, when set, receives a synthesized login record per scored
	// request and serves live snapshots at /v1/streamz.
	stream *stream.Bus
}

// NewServer wires the HTTP layer around a pipeline.
func NewServer(pipe Pipeline, cfg ServerConfig) *Server {
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = DefaultMaxInFlight
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = DefaultRequestTimeout
	}
	if cfg.BatchTimeout <= 0 {
		cfg.BatchTimeout = DefaultBatchTimeout
	}
	s := &Server{
		pipe:       pipe,
		cfg:        cfg,
		metrics:    NewMetrics(),
		sem:        make(chan struct{}, cfg.MaxInFlight),
		mux:        http.NewServeMux(),
		retryAfter: retryAfterHint(cfg.QueueWait),
	}
	// Backpressure sits outside the timeout handler so shed requests cost
	// one channel operation, not a goroutine. A batch occupies one slot —
	// the queue bounds connections doing work, and a batch is one
	// connection's pipelined work.
	s.mux.Handle("POST /v1/score",
		s.withBackpressure(http.TimeoutHandler(http.HandlerFunc(s.handleScore), cfg.RequestTimeout, "request timed out\n")))
	s.mux.Handle("POST /v1/outcome",
		s.withBackpressure(http.TimeoutHandler(http.HandlerFunc(s.handleOutcome), cfg.RequestTimeout, "request timed out\n")))
	s.mux.Handle("POST /v1/score.batch",
		s.withBackpressure(http.TimeoutHandler(http.HandlerFunc(s.handleScoreBatch), cfg.BatchTimeout, "batch timed out\n")))
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/statz", s.handleStatz)
	return s
}

// Metrics exposes the serving counters (read-only snapshots via Snapshot).
func (s *Server) Metrics() *Metrics { return s.metrics }

// SetStream attaches a streaming analysis bus: every scored request (single
// and batch) is synthesized into an event.Login and published, and GET
// /v1/streamz serves live analysis snapshots next to /v1/statz. Call before
// serving; the bus itself serializes concurrent request lanes.
func (s *Server) SetStream(bus *stream.Bus) {
	s.stream = bus
	s.mux.HandleFunc("GET /v1/streamz", s.handleStreamz)
}

func (s *Server) handleStreamz(w http.ResponseWriter, _ *http.Request) {
	snap := s.stream.Snapshot()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(snap)
}

// publishScore synthesizes the login record a simulated world would have
// logged for this decision and offers it to the stream bus. Actor is left
// empty — ground truth is unknown at serving time — so the actor-filtered
// analyses (Figures 8 and 11) stay quiet on a pure serving feed and the
// funnel tracks the observable stages; replayed dumps carry real actors.
// Out-of-order arrivals across concurrent lanes are dropped and counted by
// the bus, which live snapshots surface as events_dropped.
func (s *Server) publishScore(att risk.Attempt, d Decision) {
	if s.stream == nil {
		return
	}
	outcome := event.LoginSuccess
	switch {
	case d.Verdict == VerdictBlock:
		outcome = event.LoginBlocked
	case d.Challenge != nil && !d.Challenge.Passed:
		outcome = event.LoginChallengeFailed
	case !att.PasswordOK:
		outcome = event.LoginWrongPassword
	}
	s.stream.Publish(event.Login{
		Base:       event.Base{Time: att.At},
		Account:    att.Account,
		IP:         att.IP,
		DeviceID:   att.DeviceID,
		PasswordOK: att.PasswordOK,
		Outcome:    outcome,
		Challenged: d.Verdict == VerdictChallenge,
		RiskScore:  d.Score,
	})
}

// Handler returns the root handler.
func (s *Server) Handler() http.Handler { return s.mux }

// withBackpressure bounds in-flight requests: the semaphore's buffer is the
// whole queue, so memory is capped at MaxInFlight goroutines regardless of
// arrival rate; everything beyond waits at most QueueWait and then sheds
// with 429.
func (s *Server) withBackpressure(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.sem <- struct{}{}:
		default:
			if s.cfg.QueueWait > 0 {
				t := time.NewTimer(s.cfg.QueueWait)
				select {
				case s.sem <- struct{}{}:
					t.Stop()
				case <-t.C:
					s.reject(w)
					return
				case <-r.Context().Done():
					t.Stop()
					s.reject(w)
					return
				}
			} else {
				s.reject(w)
				return
			}
		}
		defer func() { <-s.sem }()
		next.ServeHTTP(w, r)
	})
}

// retryAfterHint derives the 429 Retry-After header from the configured
// queue wait, rounding up to whole seconds with a floor of 1 (the header's
// granularity; an instant-shed server still wants clients to pause).
func retryAfterHint(queueWait time.Duration) string {
	secs := int64((queueWait + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

func (s *Server) reject(w http.ResponseWriter) {
	s.metrics.rejected.Add(1)
	w.Header().Set("Retry-After", s.retryAfter)
	http.Error(w, "overloaded: bounded queue full", http.StatusTooManyRequests)
}

// okJSON is the /v1/outcome reply — the exact bytes the old
// json.Encoder.Encode(map[string]bool{"ok": true}) produced.
var okJSON = []byte("{\"ok\":true}\n")

func (s *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	bb := getBuf()
	defer putBuf(bb)
	body, err := readBody((*bb)[:0], r)
	if err != nil {
		s.badRequest(w, "bad body: "+err.Error())
		return
	}
	*bb = body[:0]
	var req ScoreRequest
	if err := DecodeScoreRequest(body, &req); err != nil {
		s.badRequest(w, "bad json: "+err.Error())
		return
	}
	att, err := req.Attempt()
	if err != nil {
		s.badRequest(w, err.Error())
		return
	}
	var p *challenge.Principal
	if req.Principal != nil {
		pr := req.Principal.Principal()
		p = &pr
	}
	d := s.pipe.Score(att, p)
	s.publishScore(att, d)
	resp := ScoreResponse{
		Score:           d.Score,
		Signals:         d.Signals,
		Verdict:         d.Verdict,
		ChallengeMethod: d.ChallengeMethod,
	}
	if d.Challenge != nil {
		resp.ChallengePassed = &d.Challenge.Passed
	}
	s.metrics.observeScore(d, time.Since(start))

	ob := getBuf()
	defer putBuf(ob)
	out := AppendScoreResponse((*ob)[:0], &resp)
	out = append(out, '\n')
	*ob = out[:0]
	w.Header().Set("Content-Type", "application/json")
	w.Write(out)
}

func (s *Server) handleOutcome(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	bb := getBuf()
	defer putBuf(bb)
	body, err := readBody((*bb)[:0], r)
	if err != nil {
		s.badRequest(w, "bad body: "+err.Error())
		return
	}
	*bb = body[:0]
	var req OutcomeRequest
	if err := DecodeOutcomeRequest(body, &req); err != nil {
		s.badRequest(w, "bad json: "+err.Error())
		return
	}
	att, err := req.Attempt()
	if err != nil {
		s.badRequest(w, err.Error())
		return
	}
	s.pipe.RecordOutcome(att, req.Success)
	s.metrics.observeOutcome(time.Since(start))
	w.Header().Set("Content-Type", "application/json")
	w.Write(okJSON)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte("ok\n"))
}

func (s *Server) handleStatz(w http.ResponseWriter, _ *http.Request) {
	snap := s.metrics.Snapshot()
	ob := getBuf()
	defer putBuf(ob)
	out := AppendStatzResponse((*ob)[:0], &snap)
	out = append(out, '\n')
	*ob = out[:0]
	w.Header().Set("Content-Type", "application/json")
	w.Write(out)
}

func (s *Server) badRequest(w http.ResponseWriter, msg string) {
	s.metrics.badRequests.Add(1)
	http.Error(w, msg, http.StatusBadRequest)
}

// Run serves on ln until ctx is cancelled, then drains: no new connections
// are accepted and in-flight requests get up to drain to finish. A nil
// return means the drain completed cleanly — the exit-0 contract the CI
// smoke asserts.
func (s *Server) Run(ctx context.Context, ln net.Listener, drain time.Duration) error {
	hs := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	return hs.Shutdown(sctx)
}
