package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"time"

	"manualhijack/internal/challenge"
	"manualhijack/internal/risk"
)

// Pipeline is the decision interface the HTTP layer serves. Engine is the
// production implementation; tests substitute gated pipelines to exercise
// backpressure and drain deterministically.
type Pipeline interface {
	Score(att risk.Attempt, p *challenge.Principal) Decision
	RecordOutcome(att risk.Attempt, success bool)
}

// ServerConfig tunes the HTTP front-end.
type ServerConfig struct {
	// MaxInFlight bounds concurrently served score/outcome requests — the
	// backpressure queue. Arrivals beyond the bound wait up to QueueWait
	// for a slot, then get 429. 0 means DefaultMaxInFlight.
	MaxInFlight int
	// QueueWait is how long an over-limit request may wait for a slot
	// before 429. 0 rejects immediately — strict open-loop shedding.
	QueueWait time.Duration
	// RequestTimeout aborts a score/outcome request that exceeds it with
	// 503. 0 means DefaultRequestTimeout.
	RequestTimeout time.Duration
}

// Defaults for ServerConfig zero values.
const (
	DefaultMaxInFlight    = 1024
	DefaultRequestTimeout = 2 * time.Second
)

// Server is the riskd HTTP front-end: /v1/score, /v1/outcome, /v1/healthz,
// /v1/statz.
type Server struct {
	pipe    Pipeline
	cfg     ServerConfig
	metrics *Metrics
	sem     chan struct{}
	mux     *http.ServeMux
}

// NewServer wires the HTTP layer around a pipeline.
func NewServer(pipe Pipeline, cfg ServerConfig) *Server {
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = DefaultMaxInFlight
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = DefaultRequestTimeout
	}
	s := &Server{
		pipe:    pipe,
		cfg:     cfg,
		metrics: NewMetrics(),
		sem:     make(chan struct{}, cfg.MaxInFlight),
		mux:     http.NewServeMux(),
	}
	// Backpressure sits outside the timeout handler so shed requests cost
	// one channel operation, not a goroutine.
	s.mux.Handle("POST /v1/score",
		s.withBackpressure(http.TimeoutHandler(http.HandlerFunc(s.handleScore), cfg.RequestTimeout, "request timed out\n")))
	s.mux.Handle("POST /v1/outcome",
		s.withBackpressure(http.TimeoutHandler(http.HandlerFunc(s.handleOutcome), cfg.RequestTimeout, "request timed out\n")))
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/statz", s.handleStatz)
	return s
}

// Metrics exposes the serving counters (read-only snapshots via Snapshot).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Handler returns the root handler.
func (s *Server) Handler() http.Handler { return s.mux }

// withBackpressure bounds in-flight requests: the semaphore's buffer is the
// whole queue, so memory is capped at MaxInFlight goroutines regardless of
// arrival rate; everything beyond waits at most QueueWait and then sheds
// with 429.
func (s *Server) withBackpressure(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.sem <- struct{}{}:
		default:
			if s.cfg.QueueWait > 0 {
				t := time.NewTimer(s.cfg.QueueWait)
				select {
				case s.sem <- struct{}{}:
					t.Stop()
				case <-t.C:
					s.reject(w)
					return
				case <-r.Context().Done():
					t.Stop()
					s.reject(w)
					return
				}
			} else {
				s.reject(w)
				return
			}
		}
		defer func() { <-s.sem }()
		next.ServeHTTP(w, r)
	})
}

func (s *Server) reject(w http.ResponseWriter) {
	s.metrics.rejected.Add(1)
	w.Header().Set("Retry-After", "1")
	http.Error(w, "overloaded: bounded queue full", http.StatusTooManyRequests)
}

func (s *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req ScoreRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.badRequest(w, "bad json: "+err.Error())
		return
	}
	att, err := req.Attempt()
	if err != nil {
		s.badRequest(w, err.Error())
		return
	}
	var p *challenge.Principal
	if req.Principal != nil {
		pr := req.Principal.Principal()
		p = &pr
	}
	d := s.pipe.Score(att, p)
	resp := ScoreResponse{
		Score:           d.Score,
		Signals:         d.Signals,
		Verdict:         d.Verdict,
		ChallengeMethod: d.ChallengeMethod,
	}
	if d.Challenge != nil {
		resp.ChallengePassed = &d.Challenge.Passed
	}
	s.metrics.observeScore(d, time.Since(start))
	writeJSON(w, resp)
}

func (s *Server) handleOutcome(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req OutcomeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.badRequest(w, "bad json: "+err.Error())
		return
	}
	att, err := req.Attempt()
	if err != nil {
		s.badRequest(w, err.Error())
		return
	}
	s.pipe.RecordOutcome(att, req.Success)
	s.metrics.observeOutcome(time.Since(start))
	writeJSON(w, map[string]bool{"ok": true})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte("ok\n"))
}

func (s *Server) handleStatz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.metrics.Snapshot())
}

func (s *Server) badRequest(w http.ResponseWriter, msg string) {
	s.metrics.badRequests.Add(1)
	http.Error(w, msg, http.StatusBadRequest)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

// Run serves on ln until ctx is cancelled, then drains: no new connections
// are accepted and in-flight requests get up to drain to finish. A nil
// return means the drain completed cleanly — the exit-0 contract the CI
// smoke asserts.
func (s *Server) Run(ctx context.Context, ln net.Listener, drain time.Duration) error {
	hs := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	return hs.Shutdown(sctx)
}
