package serve

import (
	"testing"
	"time"
)

func TestRetryAfterHint(t *testing.T) {
	cases := []struct {
		wait time.Duration
		want string
	}{
		{0, "1"},
		{50 * time.Millisecond, "1"},
		{time.Second, "1"},
		{1100 * time.Millisecond, "2"},
		{2 * time.Second, "2"},
		{4500 * time.Millisecond, "5"},
	}
	for _, c := range cases {
		if got := retryAfterHint(c.wait); got != c.want {
			t.Errorf("retryAfterHint(%v) = %q, want %q", c.wait, got, c.want)
		}
	}
}
