package serve_test

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"manualhijack/internal/challenge"
	"manualhijack/internal/core"
	"manualhijack/internal/identity"
	"manualhijack/internal/randx"
	"manualhijack/internal/risk"
	"manualhijack/internal/serve"
	"manualhijack/internal/stream"
)

func newTestServer(t *testing.T, shards int) (*serve.Client, *serve.Engine) {
	t.Helper()
	const seed, pop = 7, 64
	dir, plan, _ := testWorld(seed, pop, 0)
	cfg := serve.DefaultConfig(seed)
	cfg.Shards = shards
	e := serve.New(dir, plan, cfg)
	e.Prime()
	srv := serve.NewServer(e, serve.ServerConfig{})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return &serve.Client{Base: ts.URL}, e
}

func TestServerEndToEnd(t *testing.T) {
	c, e := newTestServer(t, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := c.WaitHealthy(ctx); err != nil {
		t.Fatal(err)
	}

	dir := e.Directory()
	acct := dir.Get(1)
	at := time.Date(2012, 11, 2, 9, 0, 0, 0, time.UTC)
	plan := core.DefaultIPPlan()
	rng := randx.New(99).Fork("serve/test/homeip")
	req := serve.ScoreRequest{
		Account:    acct.ID,
		IP:         plan.Addr(rng, acct.HomeCountry).String(),
		DeviceID:   identity.DeviceFingerprint(acct.ID),
		At:         at,
		PasswordOK: true,
	}
	resp, err := c.Score(req)
	if err != nil {
		t.Fatal(err)
	}
	// Home country, usual device, primed baseline: nothing anomalous.
	if resp.Verdict != serve.VerdictAdmit || resp.Score != 0 {
		t.Fatalf("benign primed login: verdict=%s score=%v, want admit 0", resp.Verdict, resp.Score)
	}
	if err := c.Outcome(serve.OutcomeRequest{
		Account: acct.ID, IP: req.IP, DeviceID: req.DeviceID, At: at, Success: true,
	}); err != nil {
		t.Fatal(err)
	}

	st, err := c.Statz()
	if err != nil {
		t.Fatal(err)
	}
	if st.Score != 1 || st.Outcome != 1 {
		t.Fatalf("statz counts score=%d outcome=%d, want 1/1", st.Score, st.Outcome)
	}
	if st.Verdicts[serve.VerdictAdmit] != 1 {
		t.Fatalf("statz verdicts = %v, want one admit", st.Verdicts)
	}
	if st.Latency.N != 2 {
		t.Fatalf("statz latency n=%d, want 2", st.Latency.N)
	}
}

func TestServerBadRequests(t *testing.T) {
	c, _ := newTestServer(t, 1)
	cases := []struct {
		name string
		body string
	}{
		{"bad json", "{nope"},
		{"bad ip", `{"account":1,"ip":"not-an-ip","at":"2012-11-02T09:00:00Z"}`},
		{"missing account", `{"ip":"1.2.3.4","at":"2012-11-02T09:00:00Z"}`},
		{"zero time", `{"account":1,"ip":"1.2.3.4"}`},
	}
	for _, tc := range cases {
		r, err := http.Post(c.Base+"/v1/score", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, r.StatusCode)
		}
	}
	st, err := c.Statz()
	if err != nil {
		t.Fatal(err)
	}
	if st.BadRequests != int64(len(cases)) {
		t.Fatalf("statz bad_requests=%d, want %d", st.BadRequests, len(cases))
	}
}

// gatedPipeline blocks every Score call until released — it makes "N
// requests in flight" a deterministic state instead of a race.
type gatedPipeline struct {
	entered chan struct{}
	release chan struct{}
}

func (g *gatedPipeline) Score(risk.Attempt, *challenge.Principal) serve.Decision {
	g.entered <- struct{}{}
	<-g.release
	return serve.Decision{Verdict: serve.VerdictAdmit}
}

func (g *gatedPipeline) RecordOutcome(risk.Attempt, bool) {}

const scoreBody = `{"account":1,"ip":"1.2.3.4","at":"2012-11-02T09:00:00Z","password_ok":true}`

// validScoreReq passes wire validation; the gated/slow test pipelines
// ignore its contents.
func validScoreReq() serve.ScoreRequest {
	return serve.ScoreRequest{
		Account:    1,
		IP:         "1.2.3.4",
		At:         time.Date(2012, 11, 2, 9, 0, 0, 0, time.UTC),
		PasswordOK: true,
	}
}

func TestBackpressure429(t *testing.T) {
	g := &gatedPipeline{entered: make(chan struct{}, 8), release: make(chan struct{})}
	srv := serve.NewServer(g, serve.ServerConfig{MaxInFlight: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := &serve.Client{Base: ts.URL}

	// Fill both slots.
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := c.Score(validScoreReq())
			errs <- err
		}()
	}
	for i := 0; i < 2; i++ {
		select {
		case <-g.entered:
		case <-time.After(5 * time.Second):
			t.Fatal("in-flight requests never reached the pipeline")
		}
	}

	// Third arrival must shed immediately with 429 + Retry-After.
	r, err := http.Post(ts.URL+"/v1/score", "application/json", strings.NewReader(scoreBody))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-limit request: status %d, want 429", r.StatusCode)
	}
	// QueueWait is zero (strict shedding), so the hint floors at 1s.
	if got := r.Header.Get("Retry-After"); got != "1" {
		t.Errorf("429 Retry-After = %q, want %q", got, "1")
	}

	close(g.release)
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("gated request failed after release: %v", err)
		}
	}
	if got := srv.Metrics().Snapshot().Rejected; got != 1 {
		t.Fatalf("rejected counter = %d, want 1", got)
	}
}

// TestBackpressureRetryAfterFromQueueWait pins the 429 Retry-After hint to
// the configured queue wait (rounded up to whole seconds), not a hardcoded
// 1: a client that already waited the full queue window should back off at
// least that long.
func TestBackpressureRetryAfterFromQueueWait(t *testing.T) {
	g := &gatedPipeline{entered: make(chan struct{}, 8), release: make(chan struct{})}
	srv := serve.NewServer(g, serve.ServerConfig{
		MaxInFlight: 1,
		QueueWait:   1100 * time.Millisecond, // ceils to 2s
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := &serve.Client{Base: ts.URL}

	errs := make(chan error, 1)
	go func() {
		_, err := c.Score(validScoreReq())
		errs <- err
	}()
	select {
	case <-g.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request never reached the pipeline")
	}

	// The over-limit arrival waits out QueueWait, then sheds with the
	// derived hint.
	r, err := http.Post(ts.URL+"/v1/score", "application/json", strings.NewReader(scoreBody))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-limit request: status %d, want 429", r.StatusCode)
	}
	if got := r.Header.Get("Retry-After"); got != "2" {
		t.Errorf("429 Retry-After = %q, want %q (ceil of 1.1s queue wait)", got, "2")
	}

	close(g.release)
	if err := <-errs; err != nil {
		t.Fatalf("gated request failed after release: %v", err)
	}
}

// slowPipeline stalls longer than the request timeout.
type slowPipeline struct{ d time.Duration }

func (s *slowPipeline) Score(risk.Attempt, *challenge.Principal) serve.Decision {
	time.Sleep(s.d)
	return serve.Decision{Verdict: serve.VerdictAdmit}
}

func (s *slowPipeline) RecordOutcome(risk.Attempt, bool) {}

func TestRequestTimeout(t *testing.T) {
	srv := serve.NewServer(&slowPipeline{d: 300 * time.Millisecond},
		serve.ServerConfig{RequestTimeout: 30 * time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	r, err := http.Post(ts.URL+"/v1/score", "application/json", strings.NewReader(scoreBody))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("slow request: status %d, want 503", r.StatusCode)
	}
}

// TestGracefulDrain proves the exit-0 contract: cancel while a request is
// in flight, and Run must finish that request and return nil within the
// drain budget.
func TestGracefulDrain(t *testing.T) {
	g := &gatedPipeline{entered: make(chan struct{}, 1), release: make(chan struct{})}
	srv := serve.NewServer(g, serve.ServerConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- srv.Run(ctx, ln, 5*time.Second) }()

	c := &serve.Client{Base: "http://" + ln.Addr().String()}
	if err := c.WaitHealthy(context.Background()); err != nil {
		t.Fatal(err)
	}
	scoreErr := make(chan error, 1)
	go func() {
		_, err := c.Score(validScoreReq())
		scoreErr <- err
	}()
	<-g.entered

	cancel() // SIGTERM equivalent: drain begins with one request in flight
	time.Sleep(50 * time.Millisecond)
	close(g.release)

	if err := <-scoreErr; err != nil {
		t.Fatalf("in-flight request aborted during drain: %v", err)
	}
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("Run returned %v, want nil (clean drain)", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after drain")
	}
}

// TestStreamzServesLiveSnapshots attaches a streaming bus to the server and
// checks that /v1/streamz reflects scored requests as they happen: accepted
// events count up, and an out-of-order arrival is dropped rather than fed
// to the time-windowed analyses.
func TestStreamzServesLiveSnapshots(t *testing.T) {
	const seed, pop = 7, 64
	dir, plan, _ := testWorld(seed, pop, 0)
	cfg := serve.DefaultConfig(seed)
	cfg.Shards = 2
	e := serve.New(dir, plan, cfg)
	e.Prime()
	srv := serve.NewServer(e, serve.ServerConfig{})
	srv.SetStream(stream.NewBus(stream.DefaultSuite(plan)...))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := &serve.Client{Base: ts.URL}

	at := time.Date(2012, 11, 2, 9, 0, 0, 0, time.UTC)
	rng := randx.New(99).Fork("serve/test/streamz")
	for i := 0; i < 5; i++ {
		acct := dir.Get(identity.AccountID(i + 1))
		req := serve.ScoreRequest{
			Account:    acct.ID,
			IP:         plan.Addr(rng, acct.HomeCountry).String(),
			DeviceID:   identity.DeviceFingerprint(acct.ID),
			At:         at.Add(time.Duration(i) * time.Minute),
			PasswordOK: true,
		}
		if _, err := c.Score(req); err != nil {
			t.Fatal(err)
		}
	}

	streamz := func() stream.Report {
		t.Helper()
		r, err := http.Get(ts.URL + "/v1/streamz")
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("/v1/streamz status %d, want 200", r.StatusCode)
		}
		var snap stream.Report
		if err := json.NewDecoder(r.Body).Decode(&snap); err != nil {
			t.Fatalf("decode streamz: %v", err)
		}
		return snap
	}

	snap := streamz()
	if snap.EventsObserved != 5 || snap.EventsDropped != 0 {
		t.Fatalf("streamz after 5 scores: observed=%d dropped=%d, want 5/0",
			snap.EventsObserved, snap.EventsDropped)
	}

	// A request timestamped before the high-water mark is scored normally
	// but dropped by the bus.
	acct := dir.Get(1)
	stale := serve.ScoreRequest{
		Account:    acct.ID,
		IP:         plan.Addr(rng, acct.HomeCountry).String(),
		At:         at.Add(-time.Hour),
		PasswordOK: true,
	}
	if _, err := c.Score(stale); err != nil {
		t.Fatal(err)
	}
	snap = streamz()
	if snap.EventsObserved != 5 || snap.EventsDropped != 1 {
		t.Fatalf("streamz after stale score: observed=%d dropped=%d, want 5/1",
			snap.EventsObserved, snap.EventsDropped)
	}
}
