package serve

import (
	"math"
	"sync/atomic"
	"time"

	"manualhijack/internal/stats"
)

// latWindow bounds the latency history: percentiles are computed over the
// most recent latWindow requests so a long-running server's memory stays
// flat. 8k observations keep p99 stable at any realistic QPS.
const latWindow = 8192

// Metrics collects the serving counters behind /v1/statz. Counters and the
// latency ring are all atomics — the score hot path never takes a lock
// here.
type Metrics struct {
	start time.Time

	score       atomic.Int64
	outcome     atomic.Int64
	rejected    atomic.Int64
	badRequests atomic.Int64

	admit      atomic.Int64
	challenged atomic.Int64
	blocked    atomic.Int64
	challenges atomic.Int64

	lat latRing
}

// NewMetrics returns metrics anchored at now.
func NewMetrics() *Metrics {
	return &Metrics{start: time.Now()}
}

func (m *Metrics) observeScore(d Decision, took time.Duration) {
	m.score.Add(1)
	switch d.Verdict {
	case VerdictAdmit:
		m.admit.Add(1)
	case VerdictChallenge:
		m.challenged.Add(1)
	case VerdictBlock:
		m.blocked.Add(1)
	}
	if d.Challenge != nil {
		m.challenges.Add(1)
	}
	m.lat.observe(took)
}

func (m *Metrics) observeOutcome(took time.Duration) {
	m.outcome.Add(1)
	m.lat.observe(took)
}

// Snapshot renders the current counters as a statz reply. Percentiles come
// from a stats.Sample built over the latency window.
func (m *Metrics) Snapshot() StatzResponse {
	sample := m.lat.sample()
	return StatzResponse{
		UptimeS:     time.Since(m.start).Seconds(),
		Score:       m.score.Load(),
		Outcome:     m.outcome.Load(),
		Rejected:    m.rejected.Load(),
		BadRequests: m.badRequests.Load(),
		Verdicts: map[Verdict]int64{
			VerdictAdmit:     m.admit.Load(),
			VerdictChallenge: m.challenged.Load(),
			VerdictBlock:     m.blocked.Load(),
		},
		ChallengesRun: m.challenges.Load(),
		Latency: LatencyWire{
			N:     sample.N(),
			P50us: sample.Percentile(50),
			P95us: sample.Percentile(95),
			P99us: sample.Percentile(99),
			MaxUs: sample.Max(),
		},
	}
}

// latRing keeps the last latWindow latencies in microseconds, lock-free:
// writers claim a slot with one atomic add on the cursor and store the
// Float64bits there with one atomic store. Under a concurrent reader a
// slot may briefly hold a value one lap older or newer than its
// neighbours — harmless for percentile estimation over 8k samples, which
// is a statistic, not a ledger. The trade is deliberate: the old
// mutex-guarded ring serialized every score and outcome request through
// one lock; this version's two uncontended-by-design atomics don't.
type latRing struct {
	cursor atomic.Int64            // total observations ever; slot = (cursor-1) % latWindow
	buf    [latWindow]atomic.Uint64 // math.Float64bits of each latency
}

func (r *latRing) observe(d time.Duration) {
	us := float64(d.Microseconds())
	n := r.cursor.Add(1)
	r.buf[(n-1)%latWindow].Store(math.Float64bits(us))
}

// sample snapshots the window into a stats.Sample for percentile queries.
func (r *latRing) sample() *stats.Sample {
	n := r.cursor.Load()
	if n > latWindow {
		n = latWindow
	}
	var s stats.Sample
	for i := int64(0); i < n; i++ {
		s.Add(math.Float64frombits(r.buf[i].Load()))
	}
	return &s
}
