package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"manualhijack/internal/stats"
)

// latWindow bounds the latency history: percentiles are computed over the
// most recent latWindow requests so a long-running server's memory stays
// flat. 8k observations keep p99 stable at any realistic QPS.
const latWindow = 8192

// Metrics collects the serving counters behind /v1/statz. Counters are
// atomics; the latency ring takes a short mutex per observation.
type Metrics struct {
	start time.Time

	score       atomic.Int64
	outcome     atomic.Int64
	rejected    atomic.Int64
	badRequests atomic.Int64

	admit      atomic.Int64
	challenged atomic.Int64
	blocked    atomic.Int64
	challenges atomic.Int64

	lat latRing
}

// NewMetrics returns metrics anchored at now.
func NewMetrics() *Metrics {
	return &Metrics{start: time.Now(), lat: latRing{buf: make([]float64, 0, latWindow)}}
}

func (m *Metrics) observeScore(d Decision, took time.Duration) {
	m.score.Add(1)
	switch d.Verdict {
	case VerdictAdmit:
		m.admit.Add(1)
	case VerdictChallenge:
		m.challenged.Add(1)
	case VerdictBlock:
		m.blocked.Add(1)
	}
	if d.Challenge != nil {
		m.challenges.Add(1)
	}
	m.lat.observe(took)
}

func (m *Metrics) observeOutcome(took time.Duration) {
	m.outcome.Add(1)
	m.lat.observe(took)
}

// Snapshot renders the current counters as a statz reply. Percentiles come
// from a stats.Sample built over the latency window.
func (m *Metrics) Snapshot() StatzResponse {
	sample := m.lat.sample()
	return StatzResponse{
		UptimeS:     time.Since(m.start).Seconds(),
		Score:       m.score.Load(),
		Outcome:     m.outcome.Load(),
		Rejected:    m.rejected.Load(),
		BadRequests: m.badRequests.Load(),
		Verdicts: map[Verdict]int64{
			VerdictAdmit:     m.admit.Load(),
			VerdictChallenge: m.challenged.Load(),
			VerdictBlock:     m.blocked.Load(),
		},
		ChallengesRun: m.challenges.Load(),
		Latency: LatencyWire{
			N:     sample.N(),
			P50us: sample.Percentile(50),
			P95us: sample.Percentile(95),
			P99us: sample.Percentile(99),
			MaxUs: sample.Max(),
		},
	}
}

// latRing keeps the last latWindow latencies in microseconds.
type latRing struct {
	mu  sync.Mutex
	buf []float64
	idx int
}

func (r *latRing) observe(d time.Duration) {
	us := float64(d.Microseconds())
	r.mu.Lock()
	if len(r.buf) < latWindow {
		r.buf = append(r.buf, us)
	} else {
		r.buf[r.idx] = us
		r.idx = (r.idx + 1) % latWindow
	}
	r.mu.Unlock()
}

// sample snapshots the window into a stats.Sample for percentile queries.
func (r *latRing) sample() *stats.Sample {
	r.mu.Lock()
	snap := append([]float64(nil), r.buf...)
	r.mu.Unlock()
	var s stats.Sample
	for _, v := range snap {
		s.Add(v)
	}
	return &s
}
