package serve

import (
	"sync"
	"testing"
	"time"
)

// TestLatRingConcurrent hammers the lock-free latency ring from many
// writers while a reader keeps sampling. Run under -race this proves the
// ring is data-race-free; the assertions prove no observation is lost and
// no sampled value is garbage (every stored latency is one the writers
// actually produced).
func TestLatRingConcurrent(t *testing.T) {
	var r latRing
	const writers = 8
	const perWriter = 4 * latWindow / writers

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent sampler
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := r.sample()
			for i := 0; i < s.N(); i++ {
				// Values are written as whole milliseconds in [1, writers];
				// anything else means a torn or uninitialized read leaked out.
				v := s.Percentile(float64(100*i) / float64(s.N()+1))
				if v < 0 || v > writers*1000 {
					t.Errorf("sampled impossible latency %v", v)
					return
				}
			}
		}
	}()

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			d := time.Duration(w+1) * time.Millisecond
			for i := 0; i < perWriter; i++ {
				r.observe(d)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	// Writers finish fast; give the sampler its stop signal once the
	// cursor shows every observation landed.
	deadline := time.After(10 * time.Second)
	for r.cursor.Load() < int64(writers*perWriter) {
		select {
		case <-deadline:
			t.Fatalf("writers stalled: cursor=%d want %d", r.cursor.Load(), writers*perWriter)
		default:
			time.Sleep(time.Millisecond)
		}
	}
	close(stop)
	<-done

	if got := r.cursor.Load(); got != int64(writers*perWriter) {
		t.Fatalf("cursor=%d, want %d — observations lost", got, writers*perWriter)
	}
	s := r.sample()
	if s.N() != latWindow {
		t.Fatalf("sample holds %d values, want full window %d", s.N(), latWindow)
	}
	if min, max := s.Min(), s.Max(); min < 1000 || max > writers*1000 {
		t.Fatalf("sampled range [%v, %v] outside written range [1000, %d]", min, max, writers*1000)
	}
}

// TestLatRingWindowing checks the ring reports partial fills correctly and
// wraps once full.
func TestLatRingWindowing(t *testing.T) {
	var r latRing
	if s := r.sample(); s.N() != 0 {
		t.Fatalf("empty ring sampled %d values", s.N())
	}
	for i := 0; i < 10; i++ {
		r.observe(5 * time.Microsecond)
	}
	if s := r.sample(); s.N() != 10 || s.Max() != 5 {
		t.Fatalf("partial fill: n=%d max=%v, want 10/5", s.N(), s.Max())
	}
	for i := 0; i < latWindow; i++ {
		r.observe(7 * time.Microsecond)
	}
	s := r.sample()
	if s.N() != latWindow {
		t.Fatalf("full ring sampled %d values, want %d", s.N(), latWindow)
	}
	if s.Min() != 7 || s.Max() != 7 {
		t.Fatalf("wrap left stale values: range [%v, %v], want all 7", s.Min(), s.Max())
	}
}
