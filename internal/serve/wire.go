// Package serve exposes the login-risk decision pipeline — risk.Analyzer
// scoring plus challenge.Challenger escalation — as an online service: the
// thing the paper calls "the best defense strategy that an identity
// provider can implement" (§8.2), exercised the way an identity provider
// actually runs it: as a network endpoint under concurrent login traffic.
//
// The package has three layers:
//
//   - Engine (engine.go): the sharded decision pipeline. risk.Analyzer is
//     single-goroutine by contract, so the engine partitions accounts over
//     N shards by AccountID hash — each shard owns one analyzer and one
//     challenger behind a mutex — while the cross-account IP-fanout signal
//     lives in its own IP-sharded, leaf-locked state shared by all account
//     shards. Throughput scales with cores; per-account history stays
//     sequentially consistent.
//   - Server (server.go): net/http + JSON front-end with request timeouts,
//     bounded-queue backpressure (429, never unbounded growth), metrics
//     (stats.go), and graceful drain on shutdown.
//   - Replay (client.go, replay.go): a client that streams the login
//     attempts out of an NDJSON dump through a live server and cross-checks
//     every served score and verdict against what the simulator decided for
//     the same seed — tying the serving path back to the measurement
//     pipeline.
package serve

import (
	"fmt"
	"net/netip"
	"time"

	"manualhijack/internal/challenge"
	"manualhijack/internal/geo"
	"manualhijack/internal/identity"
	"manualhijack/internal/risk"
)

// Verdict is the service's decision for one login attempt.
type Verdict string

// Verdicts. They mirror the auth.Service risk gate: scores in
// [ChallengeThreshold, BlockThreshold) challenge, scores at or above
// BlockThreshold block, everything below admits.
const (
	VerdictAdmit     Verdict = "admit"
	VerdictChallenge Verdict = "challenge"
	VerdictBlock     Verdict = "block"
)

// VerdictFor maps a risk score onto a verdict using the given thresholds —
// the same cutoff semantics auth.Service.admit applies in the simulator.
func VerdictFor(score, challengeAt, blockAt float64) Verdict {
	switch {
	case score >= blockAt:
		return VerdictBlock
	case score >= challengeAt:
		return VerdictChallenge
	default:
		return VerdictAdmit
	}
}

// ScoreRequest is the POST /v1/score body: one login attempt, described by
// its observable fields (never ground truth).
type ScoreRequest struct {
	Account    identity.AccountID `json:"account"`
	IP         string             `json:"ip"`
	DeviceID   string             `json:"device_id,omitempty"`
	At         time.Time          `json:"at"`
	PasswordOK bool               `json:"password_ok"`
	// Principal optionally carries the login principal's capabilities; when
	// present and the verdict is "challenge", the server actually runs the
	// challenge and reports the outcome.
	Principal *PrincipalWire `json:"principal,omitempty"`
}

// PrincipalWire is the JSON form of challenge.Principal.
type PrincipalWire struct {
	Phones         []string `json:"phones,omitempty"`
	KnowledgeSkill float64  `json:"knowledge_skill,omitempty"`
}

// Principal converts the wire form.
func (p *PrincipalWire) Principal() challenge.Principal {
	phones := make([]geo.Phone, len(p.Phones))
	for i, ph := range p.Phones {
		phones[i] = geo.Phone(ph)
	}
	return challenge.Principal{Phones: phones, KnowledgeSkill: p.KnowledgeSkill}
}

// Attempt converts the request into a risk.Attempt, validating the IP.
func (r *ScoreRequest) Attempt() (risk.Attempt, error) {
	if r.Account == identity.None {
		return risk.Attempt{}, fmt.Errorf("serve: missing account")
	}
	ip, err := netip.ParseAddr(r.IP)
	if err != nil {
		return risk.Attempt{}, fmt.Errorf("serve: bad ip %q: %w", r.IP, err)
	}
	if r.At.IsZero() {
		return risk.Attempt{}, fmt.Errorf("serve: missing attempt time")
	}
	return risk.Attempt{
		Account:    r.Account,
		IP:         ip,
		DeviceID:   r.DeviceID,
		At:         r.At,
		PasswordOK: r.PasswordOK,
	}, nil
}

// ScoreResponse is the POST /v1/score reply.
type ScoreResponse struct {
	Score   float64      `json:"score"`
	Signals risk.Signals `json:"signals"`
	Verdict Verdict      `json:"verdict"`
	// ChallengeMethod is the method the provider would use when Verdict is
	// "challenge" (sms, knowledge, or none).
	ChallengeMethod challenge.Method `json:"challenge_method,omitempty"`
	// ChallengePassed reports the challenge outcome when the request carried
	// a principal and a challenge actually ran.
	ChallengePassed *bool `json:"challenge_passed,omitempty"`
}

// OutcomeRequest is the POST /v1/outcome body: the service's final decision
// for an earlier attempt, fed back so account history evolves — successes
// absorb the country/device/IP observations, failures grow the
// failure-history signal.
type OutcomeRequest struct {
	Account  identity.AccountID `json:"account"`
	IP       string             `json:"ip"`
	DeviceID string             `json:"device_id,omitempty"`
	At       time.Time          `json:"at"`
	Success  bool               `json:"success"`
}

// Attempt converts the request into a risk.Attempt, validating the IP.
func (r *OutcomeRequest) Attempt() (risk.Attempt, error) {
	sr := ScoreRequest{Account: r.Account, IP: r.IP, DeviceID: r.DeviceID, At: r.At}
	return sr.Attempt()
}

// LatencyWire reports request-latency percentiles in microseconds, computed
// from a stats.Sample over the most recent requests.
type LatencyWire struct {
	N     int     `json:"n"`
	P50us float64 `json:"p50_us"`
	P95us float64 `json:"p95_us"`
	P99us float64 `json:"p99_us"`
	MaxUs float64 `json:"max_us"`
}

// StatzResponse is the GET /v1/statz reply.
type StatzResponse struct {
	UptimeS       float64           `json:"uptime_s"`
	Score         int64             `json:"score_requests"`
	Outcome       int64             `json:"outcome_requests"`
	Rejected      int64             `json:"rejected_429"`
	BadRequests   int64             `json:"bad_requests"`
	Verdicts      map[Verdict]int64 `json:"verdicts"`
	ChallengesRun int64             `json:"challenges_run"`
	Latency       LatencyWire       `json:"latency"`
}
