package simtime

import (
	"testing"
	"time"
)

// benchOffsets returns a fixed pseudo-random schedule pattern (an LCG, so
// no math/rand allocation noise) mixing near-term and far-term events —
// the shape world agents produce: mostly short After()s with a tail of
// day-scale bookings.
func benchOffsets(n int) []time.Duration {
	offs := make([]time.Duration, n)
	state := uint64(0x9e3779b97f4a7c15)
	for i := range offs {
		state = state*6364136223846793005 + 1442695040888963407
		offs[i] = time.Duration(state%uint64(6*time.Hour)) + time.Millisecond
	}
	return offs
}

// BenchmarkClockSchedule is the scheduler round trip: push a batch of
// events through the queue and dispatch them in order. One op is one
// Schedule plus its dispatch. The handler is a shared no-op so the
// numbers isolate the scheduler's own cost (heap maintenance and any
// per-event allocation).
func BenchmarkClockSchedule(b *testing.B) {
	const batch = 1024
	offs := benchOffsets(batch)
	fn := func() {}
	c := NewClock(Epoch)
	b.ReportAllocs()
	b.ResetTimer()
	done := 0
	for done < b.N {
		n := batch
		if b.N-done < n {
			n = b.N - done
		}
		for j := 0; j < n; j++ {
			c.Schedule(c.Now().Add(offs[j]), fn)
		}
		c.Drain()
		done += n
	}
}

// BenchmarkClockScheduleDeep holds a standing queue of 64k pending events
// while scheduling and dispatching, so sift costs reflect a deep heap —
// the regime a large world's agent population produces.
func BenchmarkClockScheduleDeep(b *testing.B) {
	const standing = 64 * 1024
	const batch = 1024
	offs := benchOffsets(standing)
	fn := func() {}
	c := NewClock(Epoch)
	far := Epoch.Add(1000 * 24 * time.Hour)
	for j := 0; j < standing; j++ {
		c.Schedule(far.Add(offs[j]), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	done := 0
	for done < b.N {
		n := batch
		if b.N-done < n {
			n = b.N - done
		}
		for j := 0; j < n; j++ {
			c.Schedule(c.Now().Add(offs[j]), fn)
		}
		c.RunUntil(c.Now().Add(7 * time.Hour))
		done += n
	}
}

// BenchmarkClockEvery measures the periodic-tick path used by daily
// agents: one op is one tick of a long-running Every chain.
func BenchmarkClockEvery(b *testing.B) {
	c := NewClock(Epoch)
	ticks := 0
	end := Epoch.Add(time.Duration(b.N+1) * time.Minute)
	c.Every(time.Minute, end, func() { ticks++ })
	b.ReportAllocs()
	b.ResetTimer()
	c.RunUntil(end)
	if ticks < b.N {
		b.Fatalf("ticked %d times, want >= %d", ticks, b.N)
	}
}
