// Package simtime provides the discrete-event simulation clock used by the
// whole study. All subsystems observe time exclusively through a *Clock so
// that a simulated multi-year measurement campaign runs in milliseconds and
// is perfectly reproducible.
//
// The scheduler is a binary-heap event queue with a deterministic tie-break:
// events scheduled for the same instant fire in the order they were
// scheduled. Handlers may schedule further events, including at the current
// instant.
package simtime

import (
	"container/heap"
	"fmt"
	"time"
)

// Epoch is the default start of simulated time. The study spans 2011–2014,
// so the default world starts in 2011.
var Epoch = time.Date(2011, time.January, 1, 0, 0, 0, 0, time.UTC)

// Clock is a simulated clock combined with an event scheduler. The zero
// value is not usable; call NewClock.
type Clock struct {
	now   time.Time
	queue eventQueue
	seq   uint64
	// running guards against re-entrant Run calls from handlers.
	running bool
}

// NewClock returns a clock set to start.
func NewClock(start time.Time) *Clock {
	return &Clock{now: start}
}

// Now returns the current simulated time.
func (c *Clock) Now() time.Time { return c.now }

// Len reports the number of pending events.
func (c *Clock) Len() int { return c.queue.Len() }

// Schedule runs fn at the absolute instant at. Scheduling in the past is an
// error in the simulation logic, so it panics rather than silently
// reordering history.
func (c *Clock) Schedule(at time.Time, fn func()) {
	if at.Before(c.now) {
		panic(fmt.Sprintf("simtime: schedule at %s before now %s", at, c.now))
	}
	c.seq++
	heap.Push(&c.queue, &event{at: at, seq: c.seq, fn: fn})
}

// After runs fn after d has elapsed from the current instant.
func (c *Clock) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	c.Schedule(c.now.Add(d), fn)
}

// Every schedules fn at each multiple of period until end (exclusive),
// starting one period from now. It is a convenience for periodic agents
// such as daily work schedules.
func (c *Clock) Every(period time.Duration, end time.Time, fn func()) {
	if period <= 0 {
		panic("simtime: Every with non-positive period")
	}
	var tick func()
	tick = func() {
		fn()
		next := c.now.Add(period)
		if next.Before(end) {
			c.Schedule(next, tick)
		}
	}
	first := c.now.Add(period)
	if first.Before(end) {
		c.Schedule(first, tick)
	}
}

// RunUntil executes pending events in timestamp order until the queue is
// empty or the next event is at or after deadline. The clock is left at
// deadline (or at the last executed event if the queue drained early and
// deadline is zero). It returns the number of events executed.
func (c *Clock) RunUntil(deadline time.Time) int {
	if c.running {
		panic("simtime: re-entrant RunUntil from an event handler")
	}
	c.running = true
	defer func() { c.running = false }()

	n := 0
	for c.queue.Len() > 0 {
		next := c.queue[0]
		if !next.at.Before(deadline) {
			break
		}
		heap.Pop(&c.queue)
		c.now = next.at
		next.fn()
		n++
	}
	if c.now.Before(deadline) {
		c.now = deadline
	}
	return n
}

// Drain executes every pending event regardless of timestamp. It returns
// the number of events executed. Handlers may keep scheduling; Drain stops
// only when the queue is empty, so unbounded periodic schedules must be
// bounded by the caller (Every takes an end time for this reason).
func (c *Clock) Drain() int {
	if c.running {
		panic("simtime: re-entrant Drain from an event handler")
	}
	c.running = true
	defer func() { c.running = false }()

	n := 0
	for c.queue.Len() > 0 {
		next := heap.Pop(&c.queue).(*event)
		c.now = next.at
		next.fn()
		n++
	}
	return n
}

// Advance moves the clock forward by d, running any events that fall in
// the window.
func (c *Clock) Advance(d time.Duration) int {
	return c.RunUntil(c.now.Add(d))
}

type event struct {
	at  time.Time
	seq uint64
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) { *q = append(*q, x.(*event)) }

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}
