// Package simtime provides the discrete-event simulation clock used by the
// whole study. All subsystems observe time exclusively through a *Clock so
// that a simulated multi-year measurement campaign runs in milliseconds and
// is perfectly reproducible.
//
// The scheduler is a value-typed 4-ary min-heap keyed on int64 UnixNanos
// with a deterministic tie-break: events scheduled for the same instant
// fire in the order they were scheduled. Handlers may schedule further
// events, including at the current instant. The heap stores entries by
// value (no per-event node allocation, no interface boxing) and compares
// two machine words instead of calling time.Time methods, because
// Schedule+dispatch is the innermost loop of every world simulation.
package simtime

import (
	"fmt"
	"time"
)

// Epoch is the default start of simulated time. The study spans 2011–2014,
// so the default world starts in 2011.
var Epoch = time.Date(2011, time.January, 1, 0, 0, 0, 0, time.UTC)

// Clock is a simulated clock combined with an event scheduler. The zero
// value is not usable; call NewClock.
type Clock struct {
	now      time.Time
	nowNanos int64
	queue    []entry
	seq      uint64
	// running guards against re-entrant Run calls from handlers.
	running bool
}

// entry is one pending event, stored by value in the heap. The key is the
// instant as UnixNanos (every simulated instant in this codebase is within
// the int64-nanosecond range, 1678–2262) with the scheduling sequence
// number breaking ties FIFO. The original time.Time rides along so the
// clock observed by handlers is bit-identical to what the scheduler was
// given — reconstructing it from nanos could alter the internal
// representation that report byte-determinism depends on.
type entry struct {
	at   int64
	seq  uint64
	when time.Time
	fn   func()
}

// NewClock returns a clock set to start.
func NewClock(start time.Time) *Clock {
	return &Clock{now: start, nowNanos: start.UnixNano()}
}

// Now returns the current simulated time.
func (c *Clock) Now() time.Time { return c.now }

// Len reports the number of pending events.
func (c *Clock) Len() int { return len(c.queue) }

// Reserve grows the pending-event queue to hold at least n events without
// further allocation. Worlds that know their expected event volume call it
// once at assembly so steady-state scheduling never reallocates.
func (c *Clock) Reserve(n int) {
	if n <= cap(c.queue) {
		return
	}
	q := make([]entry, len(c.queue), n)
	copy(q, c.queue)
	c.queue = q
}

// Schedule runs fn at the absolute instant at. Scheduling in the past is an
// error in the simulation logic, so it panics rather than silently
// reordering history.
func (c *Clock) Schedule(at time.Time, fn func()) {
	nanos := at.UnixNano()
	if nanos < c.nowNanos {
		panic(fmt.Sprintf("simtime: schedule at %s before now %s", at, c.now))
	}
	c.seq++
	c.push(entry{at: nanos, seq: c.seq, when: at, fn: fn})
}

// After runs fn after d has elapsed from the current instant.
func (c *Clock) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	c.Schedule(c.now.Add(d), fn)
}

// Every schedules fn at each multiple of period until end (exclusive),
// starting one period from now. It is a convenience for periodic agents
// such as daily work schedules. Ticks land exactly on period multiples:
// each tick books the next relative to its own instant, not to whatever
// the clock reads when other events interleave.
func (c *Clock) Every(period time.Duration, end time.Time, fn func()) {
	if period <= 0 {
		panic("simtime: Every with non-positive period")
	}
	var tick func()
	tick = func() {
		fn()
		next := c.now.Add(period)
		if next.Before(end) {
			c.Schedule(next, tick)
		}
	}
	first := c.now.Add(period)
	if first.Before(end) {
		c.Schedule(first, tick)
	}
}

// RunUntil executes pending events in timestamp order until the queue is
// empty or the next event is at or after deadline. The clock is left at
// deadline (or at the last executed event if the queue drained early and
// deadline is zero). It returns the number of events executed.
func (c *Clock) RunUntil(deadline time.Time) int {
	if c.running {
		panic("simtime: re-entrant RunUntil from an event handler")
	}
	c.running = true
	defer func() { c.running = false }()

	limit := deadline.UnixNano()
	n := 0
	for len(c.queue) > 0 && c.queue[0].at < limit {
		e := c.pop()
		c.now = e.when
		c.nowNanos = e.at
		e.fn()
		n++
	}
	if c.now.Before(deadline) {
		c.now = deadline
		c.nowNanos = limit
	}
	return n
}

// Drain executes every pending event regardless of timestamp. It returns
// the number of events executed. Handlers may keep scheduling; Drain stops
// only when the queue is empty, so unbounded periodic schedules must be
// bounded by the caller (Every takes an end time for this reason).
func (c *Clock) Drain() int {
	if c.running {
		panic("simtime: re-entrant Drain from an event handler")
	}
	c.running = true
	defer func() { c.running = false }()

	n := 0
	for len(c.queue) > 0 {
		e := c.pop()
		c.now = e.when
		c.nowNanos = e.at
		e.fn()
		n++
	}
	return n
}

// Advance moves the clock forward by d, running any events that fall in
// the window.
func (c *Clock) Advance(d time.Duration) int {
	return c.RunUntil(c.now.Add(d))
}

// less orders entries by instant, then by scheduling order (FIFO within
// the same instant).
func less(a, b *entry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// The heap is 4-ary: children of i are 4i+1..4i+4. Compared to a binary
// heap it halves the tree depth, trading slightly more comparisons per
// level for far fewer cache-missing levels — a win for the deep queues a
// large world carries.

// push appends e and sifts it up.
func (c *Clock) push(e entry) {
	q := append(c.queue, e)
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !less(&q[i], &q[parent]) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
	c.queue = q
}

// pop removes and returns the minimum entry.
func (c *Clock) pop() entry {
	q := c.queue
	top := q[0]
	last := len(q) - 1
	q[0] = q[last]
	q[last] = entry{} // release the handler reference
	q = q[:last]
	c.queue = q

	// Sift the relocated root down.
	i := 0
	for {
		child := i*4 + 1
		if child >= last {
			break
		}
		// Pick the smallest of up to four children.
		min := child
		hi := child + 4
		if hi > last {
			hi = last
		}
		for j := child + 1; j < hi; j++ {
			if less(&q[j], &q[min]) {
				min = j
			}
		}
		if !less(&q[min], &q[i]) {
			break
		}
		q[i], q[min] = q[min], q[i]
		i = min
	}
	return top
}
