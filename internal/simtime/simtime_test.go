package simtime

import (
	"testing"
	"time"
)

func TestScheduleOrder(t *testing.T) {
	c := NewClock(Epoch)
	var got []int
	c.Schedule(Epoch.Add(3*time.Hour), func() { got = append(got, 3) })
	c.Schedule(Epoch.Add(1*time.Hour), func() { got = append(got, 1) })
	c.Schedule(Epoch.Add(2*time.Hour), func() { got = append(got, 2) })
	n := c.Drain()
	if n != 3 {
		t.Fatalf("Drain ran %d events, want 3", n)
	}
	for i, v := range []int{1, 2, 3} {
		if got[i] != v {
			t.Fatalf("order = %v, want [1 2 3]", got)
		}
	}
}

func TestSameInstantFIFO(t *testing.T) {
	c := NewClock(Epoch)
	at := Epoch.Add(time.Minute)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		c.Schedule(at, func() { got = append(got, i) })
	}
	c.Drain()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events not FIFO: %v", got)
		}
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	c := NewClock(Epoch)
	ran := 0
	c.Schedule(Epoch.Add(1*time.Hour), func() { ran++ })
	c.Schedule(Epoch.Add(5*time.Hour), func() { ran++ })
	n := c.RunUntil(Epoch.Add(2 * time.Hour))
	if n != 1 || ran != 1 {
		t.Fatalf("ran %d events before deadline, want 1", ran)
	}
	if !c.Now().Equal(Epoch.Add(2 * time.Hour)) {
		t.Fatalf("clock = %s, want deadline", c.Now())
	}
	if c.Len() != 1 {
		t.Fatalf("pending = %d, want 1", c.Len())
	}
}

func TestHandlersScheduleMore(t *testing.T) {
	c := NewClock(Epoch)
	count := 0
	var chain func()
	chain = func() {
		count++
		if count < 5 {
			c.After(time.Minute, chain)
		}
	}
	c.After(time.Minute, chain)
	c.Drain()
	if count != 5 {
		t.Fatalf("chained events = %d, want 5", count)
	}
	if want := Epoch.Add(5 * time.Minute); !c.Now().Equal(want) {
		t.Fatalf("clock = %s, want %s", c.Now(), want)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	c := NewClock(Epoch)
	c.RunUntil(Epoch.Add(time.Hour))
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	c.Schedule(Epoch, func() {})
}

func TestEvery(t *testing.T) {
	c := NewClock(Epoch)
	count := 0
	c.Every(time.Hour, Epoch.Add(5*time.Hour+time.Minute), func() { count++ })
	c.Drain()
	if count != 5 {
		t.Fatalf("periodic fired %d times, want 5", count)
	}
}

func TestAfterNegativeClamped(t *testing.T) {
	c := NewClock(Epoch)
	ran := false
	c.After(-time.Hour, func() { ran = true })
	c.Drain()
	if !ran {
		t.Fatal("negative After never ran")
	}
	if !c.Now().Equal(Epoch) {
		t.Fatalf("clock moved to %s, want epoch", c.Now())
	}
}

func TestAdvance(t *testing.T) {
	c := NewClock(Epoch)
	ran := 0
	c.After(30*time.Minute, func() { ran++ })
	c.Advance(time.Hour)
	if ran != 1 {
		t.Fatalf("Advance ran %d, want 1", ran)
	}
	if !c.Now().Equal(Epoch.Add(time.Hour)) {
		t.Fatalf("clock = %s", c.Now())
	}
}
