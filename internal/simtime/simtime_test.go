package simtime

import (
	"testing"
	"time"
)

func TestScheduleOrder(t *testing.T) {
	c := NewClock(Epoch)
	var got []int
	c.Schedule(Epoch.Add(3*time.Hour), func() { got = append(got, 3) })
	c.Schedule(Epoch.Add(1*time.Hour), func() { got = append(got, 1) })
	c.Schedule(Epoch.Add(2*time.Hour), func() { got = append(got, 2) })
	n := c.Drain()
	if n != 3 {
		t.Fatalf("Drain ran %d events, want 3", n)
	}
	for i, v := range []int{1, 2, 3} {
		if got[i] != v {
			t.Fatalf("order = %v, want [1 2 3]", got)
		}
	}
}

func TestSameInstantFIFO(t *testing.T) {
	c := NewClock(Epoch)
	at := Epoch.Add(time.Minute)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		c.Schedule(at, func() { got = append(got, i) })
	}
	c.Drain()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events not FIFO: %v", got)
		}
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	c := NewClock(Epoch)
	ran := 0
	c.Schedule(Epoch.Add(1*time.Hour), func() { ran++ })
	c.Schedule(Epoch.Add(5*time.Hour), func() { ran++ })
	n := c.RunUntil(Epoch.Add(2 * time.Hour))
	if n != 1 || ran != 1 {
		t.Fatalf("ran %d events before deadline, want 1", ran)
	}
	if !c.Now().Equal(Epoch.Add(2 * time.Hour)) {
		t.Fatalf("clock = %s, want deadline", c.Now())
	}
	if c.Len() != 1 {
		t.Fatalf("pending = %d, want 1", c.Len())
	}
}

func TestHandlersScheduleMore(t *testing.T) {
	c := NewClock(Epoch)
	count := 0
	var chain func()
	chain = func() {
		count++
		if count < 5 {
			c.After(time.Minute, chain)
		}
	}
	c.After(time.Minute, chain)
	c.Drain()
	if count != 5 {
		t.Fatalf("chained events = %d, want 5", count)
	}
	if want := Epoch.Add(5 * time.Minute); !c.Now().Equal(want) {
		t.Fatalf("clock = %s, want %s", c.Now(), want)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	c := NewClock(Epoch)
	c.RunUntil(Epoch.Add(time.Hour))
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	c.Schedule(Epoch, func() {})
}

func TestEvery(t *testing.T) {
	c := NewClock(Epoch)
	count := 0
	c.Every(time.Hour, Epoch.Add(5*time.Hour+time.Minute), func() { count++ })
	c.Drain()
	if count != 5 {
		t.Fatalf("periodic fired %d times, want 5", count)
	}
}

func TestAfterNegativeClamped(t *testing.T) {
	c := NewClock(Epoch)
	ran := false
	c.After(-time.Hour, func() { ran = true })
	c.Drain()
	if !ran {
		t.Fatal("negative After never ran")
	}
	if !c.Now().Equal(Epoch) {
		t.Fatalf("clock moved to %s, want epoch", c.Now())
	}
}

func TestAdvance(t *testing.T) {
	c := NewClock(Epoch)
	ran := 0
	c.After(30*time.Minute, func() { ran++ })
	c.Advance(time.Hour)
	if ran != 1 {
		t.Fatalf("Advance ran %d, want 1", ran)
	}
	if !c.Now().Equal(Epoch.Add(time.Hour)) {
		t.Fatalf("clock = %s", c.Now())
	}
}

// Same-instant FIFO must hold even when handlers re-schedule at the
// current instant while other same-instant events are still pending: a
// child scheduled from inside a handler fires after every event that was
// scheduled before it, because the tie-break is scheduling order, not
// insertion depth.
func TestSameInstantFIFOInterleavedRescheduling(t *testing.T) {
	c := NewClock(Epoch)
	at := Epoch.Add(time.Minute)
	var got []string
	c.Schedule(at, func() {
		got = append(got, "a")
		c.Schedule(at, func() { got = append(got, "a-child") })
	})
	c.Schedule(at, func() {
		got = append(got, "b")
		c.Schedule(at, func() { got = append(got, "b-child") })
	})
	c.Schedule(at, func() { got = append(got, "c") })
	c.Drain()
	want := []string{"a", "b", "c", "a-child", "b-child"}
	if len(got) != len(want) {
		t.Fatalf("order = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

// A stress variant: many same-instant events, each rescheduling one child
// at the same instant. All parents run before any child, both generations
// in scheduling order.
func TestSameInstantFIFOStress(t *testing.T) {
	c := NewClock(Epoch)
	at := Epoch.Add(time.Minute)
	const n = 500
	var got []int
	for i := 0; i < n; i++ {
		i := i
		c.Schedule(at, func() {
			got = append(got, i)
			c.Schedule(at, func() { got = append(got, n+i) })
		})
	}
	c.Drain()
	if len(got) != 2*n {
		t.Fatalf("ran %d events, want %d", len(got), 2*n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("event %d fired out of order: got %d", i, v)
		}
	}
}

// Every must tick exactly on period multiples even when other events at
// off-grid instants interleave: each tick books the next from its own
// instant, so the grid never drifts.
func TestEveryTicksOnExactMultiples(t *testing.T) {
	c := NewClock(Epoch)
	var ticks []time.Time
	end := Epoch.Add(6*time.Hour + time.Nanosecond)
	c.Every(time.Hour, end, func() { ticks = append(ticks, c.Now()) })
	for i := 0; i < 40; i++ {
		c.Schedule(Epoch.Add(time.Duration(i)*7*time.Minute+13*time.Second), func() {})
	}
	c.Drain()
	if len(ticks) != 6 {
		t.Fatalf("ticked %d times, want 6", len(ticks))
	}
	for i, at := range ticks {
		want := Epoch.Add(time.Duration(i+1) * time.Hour)
		if !at.Equal(want) {
			t.Fatalf("tick %d at %s, want exactly %s", i, at, want)
		}
	}
}

// Scheduling at exactly the current instant is legal (the boundary of the
// in-the-past panic) and fires within the same drive call.
func TestScheduleAtNow(t *testing.T) {
	c := NewClock(Epoch)
	c.RunUntil(Epoch.Add(time.Hour))
	ran := false
	c.Schedule(c.Now(), func() { ran = true })
	c.Drain()
	if !ran {
		t.Fatal("event at the current instant never ran")
	}
}

// The in-the-past panic must also fire from handler context, where the
// clock has advanced past the caller's stale timestamp.
func TestSchedulePastPanicsFromHandler(t *testing.T) {
	c := NewClock(Epoch)
	stale := Epoch.Add(time.Minute)
	c.Schedule(Epoch.Add(time.Hour), func() {
		c.Schedule(stale, func() {})
	})
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past from a handler did not panic")
		}
	}()
	c.Drain()
}

// The scheduler itself must not allocate per event: pushes into a
// reserved queue and dispatches are alloc-free, so a world's allocation
// profile is its handlers' own, not the clock's.
func TestScheduleZeroAllocs(t *testing.T) {
	c := NewClock(Epoch)
	c.Reserve(16)
	fn := func() {}
	allocs := testing.AllocsPerRun(2000, func() {
		c.Schedule(c.Now().Add(time.Second), fn)
		c.Schedule(c.Now().Add(2*time.Second), fn)
		c.Advance(3 * time.Second)
	})
	if allocs != 0 {
		t.Fatalf("Schedule+RunUntil allocated %.2f times per run, want 0", allocs)
	}
}

func TestReserve(t *testing.T) {
	c := NewClock(Epoch)
	c.Schedule(Epoch.Add(time.Hour), func() {})
	c.Reserve(1000)
	if c.Len() != 1 {
		t.Fatalf("Reserve dropped pending events: len = %d", c.Len())
	}
	c.Reserve(10) // shrinking request is a no-op
	if got := c.Drain(); got != 1 {
		t.Fatalf("Drain ran %d events, want 1", got)
	}
}
