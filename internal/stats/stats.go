// Package stats provides the small statistical toolkit the measurement
// pipeline uses: counters with shares, percentiles/CDFs over samples,
// duration distributions, and time-bucketed series. Everything is plain
// data so analyses stay easy to test.
package stats

import (
	"math"
	"sort"
	"time"
)

// Counter tallies occurrences of string keys and reports shares. The zero
// value is ready to use.
type Counter struct {
	counts map[string]int
	total  int
}

// Add increments key by one.
func (c *Counter) Add(key string) { c.AddN(key, 1) }

// AddN increments key by n.
func (c *Counter) AddN(key string, n int) {
	if c.counts == nil {
		c.counts = make(map[string]int)
	}
	c.counts[key] += n
	c.total += n
}

// Merge folds other's counts into c. Because a Counter is insensitive to
// the order keys were added, merging per-partition counters reproduces the
// single-pass counter exactly — the property the segmented map-reduce
// analyses lean on.
func (c *Counter) Merge(other *Counter) {
	for k, n := range other.counts {
		c.AddN(k, n)
	}
}

// Total returns the sum of all counts.
func (c *Counter) Total() int { return c.total }

// Count returns the count for key.
func (c *Counter) Count(key string) int { return c.counts[key] }

// Share returns key's fraction of the total, or 0 if empty.
func (c *Counter) Share(key string) float64 {
	if c.total == 0 {
		return 0
	}
	return float64(c.counts[key]) / float64(c.total)
}

// Entry is a key with its count and share.
type Entry struct {
	Key   string
	Count int
	Share float64
}

// Sorted returns all entries sorted by descending count, ties broken by key
// for determinism.
func (c *Counter) Sorted() []Entry {
	out := make([]Entry, 0, len(c.counts))
	for k, n := range c.counts {
		share := 0.0
		if c.total > 0 {
			share = float64(n) / float64(c.total)
		}
		out = append(out, Entry{Key: k, Count: n, Share: share})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// Top returns the top-k entries by count.
func (c *Counter) Top(k int) []Entry {
	s := c.Sorted()
	if k < len(s) {
		s = s[:k]
	}
	return s
}

// Keys returns the number of distinct keys.
func (c *Counter) Keys() int { return len(c.counts) }

// Sample accumulates float64 observations and answers distribution queries.
// The zero value is ready to use. Observations are kept in insertion order;
// order-statistic queries work on a separate lazily built sorted view, so
// calling Percentile/Min/Max never reorders what Values returns.
type Sample struct {
	xs     []float64 // raw observations, insertion order
	sorted []float64 // lazy sorted view; nil when stale
}

// Add appends an observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = nil
}

// AddDuration appends a duration observation in seconds.
func (s *Sample) AddDuration(d time.Duration) { s.Add(d.Seconds()) }

// Merge appends other's observations, preserving their insertion order.
// Merging per-partition samples partition by partition reproduces the
// single-pass sample exactly — including the insertion order that
// left-fold float reductions (Sum, Mean) depend on — the property the
// segmented map-reduce analyses lean on.
func (s *Sample) Merge(other *Sample) {
	if other.N() == 0 {
		return
	}
	s.xs = append(s.xs, other.xs...)
	s.sorted = nil
}

// Sum returns the observations' left-fold sum in insertion order, so a
// sample built by ordered Merge yields bit-identical totals to one built
// by sequential Adds.
func (s *Sample) Sum() float64 {
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Stddev returns the population standard deviation.
func (s *Sample) Stddev() float64 {
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	m := s.Mean()
	sum := 0.0
	for _, x := range s.xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(n))
}

// sortedView returns the observations in ascending order without touching
// the insertion-ordered xs slice. Rebuilt only after an Add.
func (s *Sample) sortedView() []float64 {
	if s.sorted == nil {
		s.sorted = append([]float64(nil), s.xs...)
		sort.Float64s(s.sorted)
	}
	return s.sorted
}

// Percentile returns the p-th percentile (p in [0,100]) using linear
// interpolation between order statistics.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	xs := s.sortedView()
	if p <= 0 {
		return xs[0]
	}
	if p >= 100 {
		return xs[len(xs)-1]
	}
	rank := p / 100 * float64(len(xs)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return xs[lo]
	}
	frac := rank - float64(lo)
	return xs[lo]*(1-frac) + xs[hi]*frac
}

// Median returns the 50th percentile.
func (s *Sample) Median() float64 { return s.Percentile(50) }

// Min returns the smallest observation, or 0 for an empty sample.
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	return s.sortedView()[0]
}

// Max returns the largest observation, or 0 for an empty sample.
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	xs := s.sortedView()
	return xs[len(xs)-1]
}

// FracBelow returns the fraction of observations <= x (the empirical CDF
// evaluated at x).
func (s *Sample) FracBelow(x float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	xs := s.sortedView()
	i := sort.SearchFloat64s(xs, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(xs))
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	X    float64
	Frac float64
}

// CDF returns the empirical CDF evaluated at n evenly spaced points between
// min and max.
func (s *Sample) CDF(n int) []CDFPoint {
	if len(s.xs) == 0 || n <= 0 {
		return nil
	}
	lo, hi := s.Min(), s.Max()
	out := make([]CDFPoint, 0, n)
	for i := 0; i < n; i++ {
		x := lo
		if n > 1 {
			x = lo + (hi-lo)*float64(i)/float64(n-1)
		}
		out = append(out, CDFPoint{X: x, Frac: s.FracBelow(x)})
	}
	return out
}

// Values returns a copy of the raw observations in insertion order. The
// order is stable regardless of which distribution queries ran first:
// Percentile, Min, Max, and friends sort a private view, never the
// observations themselves.
func (s *Sample) Values() []float64 { return append([]float64(nil), s.xs...) }

// TimeSeries buckets event timestamps into fixed-width bins anchored at a
// start instant. Used for hourly submission volumes and per-day activity.
type TimeSeries struct {
	Start  time.Time
	Width  time.Duration
	counts []int
}

// NewTimeSeries returns a series with the given origin and bucket width.
func NewTimeSeries(start time.Time, width time.Duration) *TimeSeries {
	if width <= 0 {
		panic("stats: non-positive bucket width")
	}
	return &TimeSeries{Start: start, Width: width}
}

// Observe records one event at t. Events before Start are clamped into the
// first bucket.
func (ts *TimeSeries) Observe(t time.Time) { ts.ObserveN(t, 1) }

// ObserveN records n events at t.
func (ts *TimeSeries) ObserveN(t time.Time, n int) {
	idx := 0
	if t.After(ts.Start) {
		idx = int(t.Sub(ts.Start) / ts.Width)
	}
	for len(ts.counts) <= idx {
		ts.counts = append(ts.counts, 0)
	}
	ts.counts[idx] += n
}

// Merge folds other's bucket counts into ts. Both series must share the
// same origin and width (the segmented shards are built from one
// constructor, so they always do); counts are additive per bucket and the
// result extends to the longer series.
func (ts *TimeSeries) Merge(other *TimeSeries) {
	if !ts.Start.Equal(other.Start) || ts.Width != other.Width {
		panic("stats: merging misaligned time series")
	}
	for len(ts.counts) < len(other.counts) {
		ts.counts = append(ts.counts, 0)
	}
	for i, c := range other.counts {
		ts.counts[i] += c
	}
}

// Counts returns the bucket counts (a copy).
func (ts *TimeSeries) Counts() []int { return append([]int(nil), ts.counts...) }

// Len returns the number of buckets.
func (ts *TimeSeries) Len() int { return len(ts.counts) }

// Total returns the sum of all buckets.
func (ts *TimeSeries) Total() int {
	sum := 0
	for _, c := range ts.counts {
		sum += c
	}
	return sum
}

// Peak returns the maximum bucket count and its index, or (0, -1) when the
// series is empty.
func (ts *TimeSeries) Peak() (count, index int) {
	count, index = 0, -1
	for i, c := range ts.counts {
		if c > count {
			count, index = c, i
		}
	}
	return count, index
}

// Ratio returns a/b, or 0 when b is 0. It is the pipeline's standard "safe
// divide" for shares and multipliers.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// PercentDelta returns the percentage change from base to x, e.g. 0.25 for
// a 25% increase. Returns 0 when base is 0.
func PercentDelta(base, x float64) float64 {
	if base == 0 {
		return 0
	}
	return (x - base) / base
}
