package stats

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestCounterShares(t *testing.T) {
	var c Counter
	for i := 0; i < 35; i++ {
		c.Add("mail")
	}
	for i := 0; i < 21; i++ {
		c.Add("bank")
	}
	c.AddN("other", 44)
	if c.Total() != 100 {
		t.Fatalf("total = %d", c.Total())
	}
	if got := c.Share("mail"); got != 0.35 {
		t.Fatalf("share(mail) = %v", got)
	}
	if got := c.Count("bank"); got != 21 {
		t.Fatalf("count(bank) = %d", got)
	}
	if got := c.Share("missing"); got != 0 {
		t.Fatalf("share(missing) = %v", got)
	}
}

func TestCounterSortedDeterministic(t *testing.T) {
	var c Counter
	c.AddN("b", 5)
	c.AddN("a", 5)
	c.AddN("z", 9)
	got := c.Sorted()
	if got[0].Key != "z" || got[1].Key != "a" || got[2].Key != "b" {
		t.Fatalf("sorted order = %v", got)
	}
	top := c.Top(2)
	if len(top) != 2 || top[0].Key != "z" {
		t.Fatalf("top = %v", top)
	}
}

func TestEmptyCounter(t *testing.T) {
	var c Counter
	if c.Total() != 0 || c.Share("x") != 0 || len(c.Sorted()) != 0 || c.Keys() != 0 {
		t.Fatal("empty counter misbehaves")
	}
}

func TestSamplePercentiles(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if got := s.Median(); math.Abs(got-50.5) > 0.01 {
		t.Fatalf("median = %v", got)
	}
	if got := s.Percentile(0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := s.Percentile(100); got != 100 {
		t.Fatalf("p100 = %v", got)
	}
	if got := s.Min(); got != 1 {
		t.Fatalf("min = %v", got)
	}
	if got := s.Max(); got != 100 {
		t.Fatalf("max = %v", got)
	}
}

func TestSampleMeanStddev(t *testing.T) {
	var s Sample
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if got := s.Mean(); got != 5 {
		t.Fatalf("mean = %v", got)
	}
	if got := s.Stddev(); got != 2 {
		t.Fatalf("stddev = %v", got)
	}
}

func TestFracBelow(t *testing.T) {
	var s Sample
	for i := 1; i <= 10; i++ {
		s.Add(float64(i))
	}
	if got := s.FracBelow(5); got != 0.5 {
		t.Fatalf("FracBelow(5) = %v", got)
	}
	if got := s.FracBelow(0); got != 0 {
		t.Fatalf("FracBelow(0) = %v", got)
	}
	if got := s.FracBelow(10); got != 1 {
		t.Fatalf("FracBelow(10) = %v", got)
	}
}

func TestAddAfterQueryResorts(t *testing.T) {
	var s Sample
	s.Add(10)
	_ = s.Median()
	s.Add(1)
	if got := s.Min(); got != 1 {
		t.Fatalf("min after late add = %v", got)
	}
}

func TestEmptySample(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Median() != 0 || s.FracBelow(1) != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty sample misbehaves")
	}
	if s.CDF(5) != nil {
		t.Fatal("empty CDF should be nil")
	}
}

// Property: the empirical CDF is monotonically non-decreasing and ends at 1.
func TestCDFMonotoneProperty(t *testing.T) {
	f := func(xs []float64) bool {
		var s Sample
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
			s.Add(x)
		}
		if s.N() == 0 {
			return true
		}
		cdf := s.CDF(20)
		prev := -1.0
		for _, pt := range cdf {
			if pt.Frac < prev {
				return false
			}
			prev = pt.Frac
		}
		return cdf[len(cdf)-1].Frac == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Percentile is monotone in p.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(xs []float64) bool {
		var s Sample
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
			s.Add(x)
		}
		ps := []float64{0, 10, 25, 50, 75, 90, 100}
		prev := math.Inf(-1)
		for _, p := range ps {
			v := s.Percentile(p)
			if s.N() > 0 && v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Counter totals equal the sum of entry counts, and shares sum
// to ~1 for a non-empty counter.
func TestCounterConsistencyProperty(t *testing.T) {
	f := func(keys []string) bool {
		var c Counter
		for _, k := range keys {
			c.Add(k)
		}
		sum, shares := 0, 0.0
		for _, e := range c.Sorted() {
			sum += e.Count
			shares += e.Share
		}
		if sum != c.Total() {
			return false
		}
		return c.Total() == 0 || math.Abs(shares-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeSeries(t *testing.T) {
	start := time.Date(2012, 11, 1, 0, 0, 0, 0, time.UTC)
	ts := NewTimeSeries(start, time.Hour)
	ts.Observe(start)
	ts.Observe(start.Add(30 * time.Minute))
	ts.Observe(start.Add(90 * time.Minute))
	ts.ObserveN(start.Add(5*time.Hour), 7)
	counts := ts.Counts()
	if counts[0] != 2 || counts[1] != 1 || counts[5] != 7 {
		t.Fatalf("counts = %v", counts)
	}
	if ts.Total() != 10 {
		t.Fatalf("total = %d", ts.Total())
	}
	peak, idx := ts.Peak()
	if peak != 7 || idx != 5 {
		t.Fatalf("peak = %d@%d", peak, idx)
	}
}

func TestTimeSeriesClampsPast(t *testing.T) {
	start := time.Date(2012, 11, 1, 0, 0, 0, 0, time.UTC)
	ts := NewTimeSeries(start, time.Hour)
	ts.Observe(start.Add(-time.Hour))
	if ts.Counts()[0] != 1 {
		t.Fatal("pre-start observation not clamped into bucket 0")
	}
}

func TestEmptyTimeSeriesPeak(t *testing.T) {
	ts := NewTimeSeries(time.Unix(0, 0).UTC(), time.Hour)
	if c, i := ts.Peak(); c != 0 || i != -1 {
		t.Fatalf("empty peak = %d@%d", c, i)
	}
}

func TestRatioAndDelta(t *testing.T) {
	if Ratio(1, 0) != 0 {
		t.Fatal("Ratio by zero should be 0")
	}
	if Ratio(3, 4) != 0.75 {
		t.Fatal("Ratio wrong")
	}
	if PercentDelta(100, 125) != 0.25 {
		t.Fatal("PercentDelta wrong")
	}
	if PercentDelta(0, 5) != 0 {
		t.Fatal("PercentDelta base 0 should be 0")
	}
}

func TestValuesCopy(t *testing.T) {
	var s Sample
	s.Add(3)
	v := s.Values()
	v[0] = 99
	if s.Max() != 3 {
		t.Fatal("Values did not copy")
	}
}

// Values must report observations in insertion order no matter which
// distribution queries ran in between — the order-statistic methods sort a
// private view, not the sample itself. (A regression here made analysis
// output depend on whether a percentile had been asked for first.)
func TestValuesInsertionOrderStable(t *testing.T) {
	ins := []float64{5, 1, 4, 2, 3}
	var s Sample
	for _, x := range ins {
		s.Add(x)
	}
	check := func(stage string) {
		t.Helper()
		got := s.Values()
		for i, x := range ins {
			if got[i] != x {
				t.Fatalf("%s: Values()=%v, want insertion order %v", stage, got, ins)
			}
		}
	}
	check("before queries")
	if s.Median() != 3 || s.Min() != 1 || s.Max() != 5 {
		t.Fatal("order statistics wrong")
	}
	if s.Percentile(25) != 2 || s.FracBelow(2) != 0.4 {
		t.Fatal("percentile/CDF wrong")
	}
	s.CDF(3)
	check("after order-statistic queries")

	// Interleaved adds keep both the raw order and the sorted view honest.
	s.Add(0)
	if s.Min() != 0 || s.Max() != 5 {
		t.Fatal("sorted view stale after Add")
	}
	if got := s.Values(); got[len(got)-1] != 0 {
		t.Fatalf("new observation not last: %v", got)
	}
}
