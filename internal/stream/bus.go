package stream

import (
	"sync"
	"time"

	"manualhijack/internal/event"
	"manualhijack/internal/logstore"
)

// Bus fans one event feed out to a set of Incremental analyses, serializing
// everything behind a mutex so single-goroutine builders are safe under
// concurrent publishers (riskd's request lanes) and concurrent snapshot
// readers (/v1/streamz).
//
// The bus enforces the same time-order invariant the logstore does, but
// where an out-of-order append into the store is a panic (a simulation bug
// corrupting the frozen log), an out-of-order arrival here is merely
// dropped and counted: live feeds assembled from concurrent request lanes
// can interleave non-monotonically without anything being wrong, and the
// time-windowed analyses (first-hit anchors, day buckets) only stay exact
// over an ordered feed. Equal timestamps are accepted — the simulation
// batches many events on one clock tick.
type Bus struct {
	mu   sync.Mutex
	incs []Incremental
	last time.Time
	// haveLast distinguishes "no events yet" from a first event at the
	// zero time.
	haveLast          bool
	observed, dropped int64
}

// NewBus returns a bus feeding the given analyses.
func NewBus(incs ...Incremental) *Bus {
	return &Bus{incs: incs}
}

// Publish offers one event to every analysis. It reports whether the event
// was accepted; events timestamped before an already-accepted event are
// dropped (and counted in the snapshot's events_dropped).
func (b *Bus) Publish(e event.Event) bool {
	when := e.When()
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.haveLast && when.Before(b.last) {
		b.dropped++
		return false
	}
	b.last = when
	b.haveLast = true
	b.observed++
	for _, inc := range b.incs {
		inc.Observe(e)
	}
	return true
}

// Replay publishes every record of a store in log order — the harness that
// runs a sealed dump through the streaming path. It returns the number of
// records published. Stores are time-ordered by construction, so nothing
// is dropped unless the bus already saw later events.
func (b *Bus) Replay(s *logstore.Store) int {
	n := 0
	s.Scan(func(e event.Event) {
		if b.Publish(e) {
			n++
		}
	})
	return n
}

// Snapshot returns a point-in-time report across all analyses. It is safe
// to call concurrently with Publish; the report is consistent (no event is
// half-applied across analyses).
func (b *Bus) Snapshot() Report {
	b.mu.Lock()
	defer b.mu.Unlock()
	r := Report{
		EventsObserved: b.observed,
		EventsDropped:  b.dropped,
	}
	if b.haveLast {
		r.LastEvent = b.last.UTC().Format(time.RFC3339Nano)
	}
	for _, inc := range b.incs {
		inc.Report(&r)
	}
	return r
}
