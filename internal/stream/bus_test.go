package stream_test

import (
	"sync"
	"testing"
	"time"

	"manualhijack/internal/core"
	"manualhijack/internal/event"
	"manualhijack/internal/identity"
	"manualhijack/internal/stream"
)

var t0 = time.Date(2012, 11, 1, 0, 0, 0, 0, time.UTC)

func login(at time.Time, acct identity.AccountID, actor event.Actor, outcome event.LoginOutcome) event.Login {
	return event.Login{
		Base:    event.Base{Time: at},
		Account: acct,
		Actor:   actor,
		Outcome: outcome,
	}
}

func TestBusRejectsOutOfOrder(t *testing.T) {
	bus := stream.NewBus(stream.NewLifecycle())
	if !bus.Publish(login(t0.Add(time.Hour), 1, event.ActorHijacker, event.LoginSuccess)) {
		t.Fatal("first event rejected")
	}
	// Strictly earlier: dropped.
	if bus.Publish(login(t0, 2, event.ActorHijacker, event.LoginSuccess)) {
		t.Fatal("out-of-order event accepted")
	}
	// Equal timestamp: accepted (the simulation batches events per tick).
	if !bus.Publish(login(t0.Add(time.Hour), 3, event.ActorHijacker, event.LoginSuccess)) {
		t.Fatal("equal-timestamp event rejected")
	}
	snap := bus.Snapshot()
	if snap.EventsObserved != 2 || snap.EventsDropped != 1 {
		t.Fatalf("observed=%d dropped=%d, want 2/1", snap.EventsObserved, snap.EventsDropped)
	}
	// The dropped event must not have reached the analyses.
	if snap.Lifecycle.AccountsAttempted != 2 {
		t.Fatalf("funnel attempted=%d, want 2 (dropped event leaked through)",
			snap.Lifecycle.AccountsAttempted)
	}
}

// TestBusMidWindowSnapshots takes reports while the feed is still flowing
// and checks each snapshot reflects exactly the prefix observed so far.
func TestBusMidWindowSnapshots(t *testing.T) {
	bus := stream.NewBus(stream.DefaultSuite(core.DefaultIPPlan())...)

	bus.Publish(event.LureSent{Base: event.Base{Time: t0}})
	snap := bus.Snapshot()
	if snap.Lifecycle.LuresDelivered != 1 || snap.Lifecycle.AccountsEntered != 0 {
		t.Fatalf("after lure: funnel %+v, want 1 lure, 0 entered", snap.Lifecycle)
	}

	bus.Publish(event.CredentialPhished{Base: event.Base{Time: t0.Add(time.Minute)}, Account: 9})
	bus.Publish(login(t0.Add(2*time.Minute), 9, event.ActorHijacker, event.LoginSuccess))
	snap = bus.Snapshot()
	if snap.Lifecycle.CredentialsCaptured != 1 || snap.Lifecycle.AccountsEntered != 1 {
		t.Fatalf("mid-window funnel %+v, want 1 cred, 1 entered", snap.Lifecycle)
	}
	if snap.Fig8.IPDays != 1 || snap.Fig8.MeanAttemptsPerIPDay != 1 {
		t.Fatalf("mid-window fig8 %+v, want one IP-day with one attempt", snap.Fig8)
	}

	// A second attempt from the same (zero) IP on the same day: the
	// aggregates advance, the earlier snapshot stays immutable.
	bus.Publish(login(t0.Add(3*time.Minute), 10, event.ActorHijacker, event.LoginWrongPassword))
	snap2 := bus.Snapshot()
	if snap2.Fig8.MeanAttemptsPerIPDay != 2 {
		t.Fatalf("fig8 after second attempt: mean=%v, want 2", snap2.Fig8.MeanAttemptsPerIPDay)
	}
	if snap.Fig8.MeanAttemptsPerIPDay != 1 {
		t.Fatal("earlier snapshot mutated by later Publish")
	}
}

// TestBusConcurrentObserveReport hammers Publish and Snapshot from many
// goroutines; run under -race it proves the bus serializes the
// single-goroutine builders. Publishers share one monotone timeline, so a
// mix of accepts and drops is expected — the invariant is
// observed+dropped == published and no torn reports.
func TestBusConcurrentObserveReport(t *testing.T) {
	bus := stream.NewBus(stream.DefaultSuite(core.DefaultIPPlan())...)
	const (
		writers   = 4
		perWriter = 500
		readers   = 2
	)
	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 0; i < perWriter; i++ {
				at := t0.Add(time.Duration(i) * time.Second)
				bus.Publish(login(at, identity.AccountID(w*perWriter+i),
					event.ActorHijacker, event.LoginSuccess))
			}
		}(w)
	}
	done := make(chan struct{})
	var readerWG sync.WaitGroup
	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				snap := bus.Snapshot()
				// A torn report would show fewer funnel attempts than a
				// finished Publish implies; mostly this read exists so the
				// race detector sees concurrent Snapshot traffic.
				if int64(snap.Lifecycle.AccountsAttempted) > snap.EventsObserved {
					t.Error("snapshot shows more attempts than observed events")
					return
				}
			}
		}()
	}
	writerWG.Wait()
	close(done)
	readerWG.Wait()

	snap := bus.Snapshot()
	if snap.EventsObserved+snap.EventsDropped != writers*perWriter {
		t.Fatalf("observed=%d dropped=%d, want total %d",
			snap.EventsObserved, snap.EventsDropped, writers*perWriter)
	}
	if snap.EventsObserved == 0 {
		t.Fatal("no events accepted")
	}
}
