package stream_test

import (
	"reflect"
	"testing"
	"time"

	"manualhijack/internal/core"
	"manualhijack/internal/event"
	"manualhijack/internal/stream"
)

// TestStreamingMatchesBatch is the parity gate between the incremental
// streaming analyses and the batch registry: the same world is analyzed
// three ways — the batch registry over the sealed log, a bus tapped live
// into the simulation as it runs, and a bus replaying the sealed store —
// and all three must agree exactly (reflect.DeepEqual, not tolerance).
// Any drift between the online and offline pipelines fails here before it
// can ship.
//
// Two worlds are covered: the seed-7 dump-equivalent world the CI smoke
// replays (the hijacksim configuration that produces the 12k-login dump),
// and a reduced-scale 2014-era world, so parity is not an artifact of one
// seed, one roster, or one scale.
func TestStreamingMatchesBatch(t *testing.T) {
	t.Run("seed7-dump-world", func(t *testing.T) {
		if testing.Short() {
			t.Skip("full seed-7 world is slow; run without -short")
		}
		cfg := core.DefaultConfig(7)
		cfg.PopulationN = 2000
		cfg.Days = 10
		cfg.DecoyN = 40
		assertParity(t, cfg, time.Duration(cfg.Days)*16*time.Hour)
	})

	t.Run("reduced-2014-world", func(t *testing.T) {
		cfg := core.DefaultConfig(11)
		cfg.PopulationN = 400
		cfg.Days = 5
		cfg.DecoyN = 10
		cfg.Crews = core.Roster2014()
		assertParity(t, cfg, time.Duration(cfg.Days)*16*time.Hour)
	})

	// A mixed-archetype world exercises the scorecard rows: every playbook
	// fielded at once, so the streaming scorecard must agree with batch on
	// a log containing every archetype tag.
	t.Run("mixed-archetype-world", func(t *testing.T) {
		cfg := core.DefaultConfig(23)
		cfg.PopulationN = 600
		cfg.Days = 12
		cfg.DecoyN = 10
		cfg.Archetypes = []core.ArchetypeSpec{
			{Archetype: "smashgrab", Count: 2},
			{Archetype: "stuffer", Count: 2},
			{Archetype: "datathief", Count: 1},
			{Archetype: "hopper", Count: 1},
			{Archetype: "lowslow", Count: 1},
			{Archetype: "impaas", Count: 1},
		}
		assertParity(t, cfg, time.Duration(cfg.Days)*16*time.Hour)
	})
}

// assertParity builds a world from cfg, feeds one bus live off the
// simulation's log tap while it runs, runs the batch registry over the
// sealed store, replays the store through a second bus, and requires all
// three resulting reports to be identical field-for-field.
func assertParity(t *testing.T, cfg core.Config, decoyOver time.Duration) {
	t.Helper()
	w := core.NewWorld(cfg)
	live := stream.NewBus(stream.DefaultSuite(w.Plan)...)
	w.Tap(func(e event.Event) { live.Publish(e) })
	if cfg.DecoyN > 0 {
		w.InjectDecoys(decoyOver)
	}
	w.Run()

	r, _ := core.RunAnalyses(core.AnalysisInput{
		Log:   w.Log,
		Start: cfg.Start,
		End:   w.End(),
		Plan:  w.Plan,
		Dir:   w.Dir,
	}, 0)
	batch := stream.Report{
		Lifecycle: r.Lifecycle,
		Fig6:      r.Fig6,
		Fig8:      r.Fig8,
		Fig11:     r.Fig11,
		Scorecard: r.ArchetypeScorecard,
	}

	liveSnap := live.Snapshot()
	if liveSnap.EventsObserved == 0 {
		t.Fatal("live tap observed no events — tap not wired into the world")
	}
	if liveSnap.EventsDropped != 0 {
		t.Fatalf("live tap dropped %d events; the simulation log is time-ordered, nothing should drop",
			liveSnap.EventsDropped)
	}
	if diffs := stream.AnalysisDiff(liveSnap, batch); len(diffs) > 0 {
		t.Errorf("live-tap streaming diverges from batch in: %v", diffs)
		logFirstDiff(t, liveSnap, batch)
	}

	replay := stream.NewBus(stream.DefaultSuite(w.Plan)...)
	n := replay.Replay(w.Log)
	if int64(n) != liveSnap.EventsObserved {
		t.Errorf("replay accepted %d events, live tap observed %d", n, liveSnap.EventsObserved)
	}
	replaySnap := replay.Snapshot()
	if diffs := stream.AnalysisDiff(replaySnap, batch); len(diffs) > 0 {
		t.Errorf("sealed-replay streaming diverges from batch in: %v", diffs)
		logFirstDiff(t, replaySnap, batch)
	}
	if !reflect.DeepEqual(liveSnap, replaySnap) {
		t.Error("live-tap and sealed-replay snapshots differ from each other")
	}
}

// logFirstDiff dumps the mismatching analysis structs so a parity failure
// is diagnosable from the test log alone.
func logFirstDiff(t *testing.T, got, want stream.Report) {
	t.Helper()
	if !reflect.DeepEqual(got.Lifecycle, want.Lifecycle) {
		t.Logf("lifecycle:\n  stream: %+v\n  batch:  %+v", got.Lifecycle, want.Lifecycle)
	}
	if !reflect.DeepEqual(got.Fig6, want.Fig6) {
		t.Logf("figure-6:\n  stream: %+v\n  batch:  %+v", got.Fig6, want.Fig6)
	}
	if !reflect.DeepEqual(got.Fig8, want.Fig8) {
		t.Logf("figure-8:\n  stream: %+v\n  batch:  %+v", got.Fig8, want.Fig8)
	}
	if !reflect.DeepEqual(got.Fig11, want.Fig11) {
		t.Logf("figure-11:\n  stream: %+v\n  batch:  %+v", got.Fig11, want.Fig11)
	}
	if !reflect.DeepEqual(got.Scorecard, want.Scorecard) {
		t.Logf("archetype-scorecard:\n  stream: %+v\n  batch:  %+v", got.Scorecard, want.Scorecard)
	}
}
