// Package stream is the online half of the measurement pipeline: the
// analyses that make sense *while logins happen* (the paper's §8.2
// detection posture), recast as incremental consumers of a live event
// feed instead of batch passes over a sealed logstore.Store.
//
// Correctness rests on parity by construction: each Incremental here wraps
// the same builder type (internal/analysis) that the batch Compute*
// function delegates to, so the streaming and batch paths share one
// implementation and cannot drift. The replay harness
// (TestStreamingMatchesBatch) pins the remaining glue by piping sealed
// dumps through the streaming path and asserting reflect.DeepEqual against
// the batch registry's output.
//
// Feeds: a world taps its log (core.World.Tap → Bus.Publish) so the
// analyses track the simulation as it runs, and riskd publishes a
// synthesized login record per scored request, exposing live snapshots at
// /v1/streamz. Incremental analyses hold aggregate state only — per-IP
// days, per-page series, per-account funnel bits — never the log itself,
// which is what frees million-user worlds from keeping every record
// resident (ROADMAP item 1).
package stream

import (
	"reflect"

	"manualhijack/internal/analysis"
	"manualhijack/internal/event"
	"manualhijack/internal/geo"
)

// Incremental is one streaming analysis: it folds events in one at a time
// and can write its current result into a Report at any instant.
// Implementations are single-goroutine; the Bus serializes access.
type Incremental interface {
	// Name identifies the analysis (matches the batch registry's name).
	Name() string
	// Observe folds one event into the analysis state.
	Observe(e event.Event)
	// Report writes the analysis's current result into its Report field.
	Report(r *Report)
}

// Report is a point-in-time snapshot of every streaming analysis, plus the
// bus counters. Field names mirror the batch StudyReport so the parity
// harness can compare them directly.
type Report struct {
	// EventsObserved counts events accepted by the bus; EventsDropped
	// counts out-of-order arrivals it refused.
	EventsObserved int64 `json:"events_observed"`
	EventsDropped  int64 `json:"events_dropped"`
	// LastEvent is the timestamp high-water mark.
	LastEvent string `json:"last_event,omitempty"`

	Lifecycle analysis.Lifecycle          `json:"lifecycle"`
	Fig6      analysis.Figure6            `json:"figure6_arrival_decay"`
	Fig8      analysis.Figure8            `json:"figure8_ip_fanout"`
	Fig11     analysis.Figure11           `json:"figure11_geo_clusters"`
	Scorecard analysis.ArchetypeScorecard `json:"archetype_scorecard"`
}

// AnalysisDiff compares the analysis fields of two reports (ignoring the
// bus counters) and returns the names of the ones that differ — empty
// means the reports agree. cmd/analyze -stream and the parity tests use it
// to render actionable mismatches instead of a bare DeepEqual failure.
func AnalysisDiff(a, b Report) []string {
	var diffs []string
	if !reflect.DeepEqual(a.Lifecycle, b.Lifecycle) {
		diffs = append(diffs, "lifecycle")
	}
	if !reflect.DeepEqual(a.Fig6, b.Fig6) {
		diffs = append(diffs, "figure-6")
	}
	if !reflect.DeepEqual(a.Fig8, b.Fig8) {
		diffs = append(diffs, "figure-8")
	}
	if !reflect.DeepEqual(a.Fig11, b.Fig11) {
		diffs = append(diffs, "figure-11")
	}
	if !reflect.DeepEqual(a.Scorecard, b.Scorecard) {
		diffs = append(diffs, "archetype-scorecard")
	}
	return diffs
}

// DefaultSuite returns the live-relevant analyses at their registry
// parameters: the lifecycle funnel, campaign arrival decay (Figure 6),
// per-IP fanout (Figure 8), and geo-velocity clusters (Figure 11, located
// against plan).
func DefaultSuite(plan *geo.IPPlan) []Incremental {
	return []Incremental{
		NewLifecycle(),
		NewArrivalDecay(analysis.DefaultFigure6SamplePages),
		NewIPFanout(),
		NewGeoClusters(plan, analysis.DefaultFigure11Cases),
		NewScorecard(),
	}
}

// Lifecycle streams Figure 2's hijacking funnel.
type Lifecycle struct{ b *analysis.LifecycleBuilder }

// NewLifecycle returns an empty streaming funnel.
func NewLifecycle() *Lifecycle {
	return &Lifecycle{b: analysis.NewLifecycleBuilder()}
}

func (l *Lifecycle) Name() string          { return "lifecycle" }
func (l *Lifecycle) Observe(e event.Event) { l.b.Observe(e) }
func (l *Lifecycle) Report(r *Report)      { r.Lifecycle = l.b.Lifecycle() }

// Scorecard streams the per-archetype detection scorecard.
type Scorecard struct{ b *analysis.ArchetypeScorecardBuilder }

// NewScorecard returns an empty streaming scorecard.
func NewScorecard() *Scorecard {
	return &Scorecard{b: analysis.NewArchetypeScorecardBuilder()}
}

func (s *Scorecard) Name() string          { return "archetype-scorecard" }
func (s *Scorecard) Observe(e event.Event) { s.b.Observe(e) }
func (s *Scorecard) Report(r *Report)      { r.Scorecard = s.b.Scorecard() }

// ArrivalDecay streams Figure 6's campaign credential-arrival profile.
type ArrivalDecay struct {
	b           *analysis.Figure6Builder
	samplePages int
}

// NewArrivalDecay returns an empty streaming arrival profile drawing
// Dataset 3's sample at the given size.
func NewArrivalDecay(samplePages int) *ArrivalDecay {
	return &ArrivalDecay{b: analysis.NewFigure6Builder(), samplePages: samplePages}
}

func (a *ArrivalDecay) Name() string          { return "figure-6" }
func (a *ArrivalDecay) Observe(e event.Event) { a.b.Observe(e) }
func (a *ArrivalDecay) Report(r *Report)      { r.Fig6 = a.b.Figure6(a.samplePages) }

// IPFanout streams Figure 8's hijacker per-IP-day activity.
type IPFanout struct{ b *analysis.Figure8Builder }

// NewIPFanout returns an empty streaming fanout aggregate.
func NewIPFanout() *IPFanout {
	return &IPFanout{b: analysis.NewFigure8Builder()}
}

func (f *IPFanout) Name() string          { return "figure-8" }
func (f *IPFanout) Observe(e event.Event) { f.b.Observe(e) }
func (f *IPFanout) Report(r *Report)      { r.Fig8 = f.b.Figure8() }

// GeoClusters streams Figure 11's country mix of hijack-case IPs.
type GeoClusters struct {
	b     *analysis.Figure11Builder
	plan  *geo.IPPlan
	cases int
}

// NewGeoClusters returns an empty streaming cluster aggregate locating IPs
// against plan and sampling Dataset 13 at the given case count.
func NewGeoClusters(plan *geo.IPPlan, cases int) *GeoClusters {
	return &GeoClusters{b: analysis.NewFigure11Builder(), plan: plan, cases: cases}
}

func (g *GeoClusters) Name() string          { return "figure-11" }
func (g *GeoClusters) Observe(e event.Event) { g.b.Observe(e) }
func (g *GeoClusters) Report(r *Report)      { r.Fig11 = g.b.Figure11(g.plan, g.cases) }
