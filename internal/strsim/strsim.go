// Package strsim provides the string-similarity primitives used to detect
// doppelganger addresses (§5.4): hijackers divert a victim's future
// correspondence to a look-alike account — "a difficult-to-detect typo to
// the username" at the same provider, or the same username at "a
// similar-looking domain name". Defenders can flag Reply-To and
// forwarding addresses that are suspiciously close to the account's own.
package strsim

// Levenshtein returns the edit distance between a and b (unit costs for
// insert, delete, substitute), computed over runes.
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min(
				prev[j]+1,      // delete
				cur[j-1]+1,     // insert
				prev[j-1]+cost, // substitute
			)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// Similarity maps edit distance into [0,1]: 1 for identical strings, 0
// for completely different ones.
func Similarity(a, b string) float64 {
	if a == b {
		return 1
	}
	longest := max(len([]rune(a)), len([]rune(b)))
	if longest == 0 {
		return 1
	}
	return 1 - float64(Levenshtein(a, b))/float64(longest)
}
