package strsim

import (
	"testing"
	"testing/quick"
)

func TestLevenshteinKnown(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"a", "", 1},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"eve@gmail.com", "eve@gmali.com", 2},
		{"账单", "账单", 0},
		{"账单", "账户", 1},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestSimilarityRange(t *testing.T) {
	if Similarity("same", "same") != 1 {
		t.Fatal("identity != 1")
	}
	if got := Similarity("abcd", "wxyz"); got != 0 {
		t.Fatalf("disjoint similarity = %v", got)
	}
	// The paper's doppelganger example: same username, different provider.
	a, b := "eve.smith@gmail.com", "eve.smith@gmali.com"
	if got := Similarity(a, b); got < 0.85 {
		t.Fatalf("doppelganger similarity = %v, want high", got)
	}
}

// Property: distance is symmetric, zero iff equal, and bounded by the
// longer length.
func TestLevenshteinProperties(t *testing.T) {
	f := func(a, b string) bool {
		d1, d2 := Levenshtein(a, b), Levenshtein(b, a)
		if d1 != d2 {
			return false
		}
		if (d1 == 0) != (a == b) {
			return false
		}
		la, lb := len([]rune(a)), len([]rune(b))
		max := la
		if lb > max {
			max = lb
		}
		return d1 <= max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: similarity stays in [0,1].
func TestSimilarityBounds(t *testing.T) {
	f := func(a, b string) bool {
		s := Similarity(a, b)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: a single-rune edit keeps distance exactly 1.
func TestSingleEditDistance(t *testing.T) {
	f := func(s string, pos uint8) bool {
		r := []rune(s)
		if len(r) == 0 {
			return true
		}
		i := int(pos) % len(r)
		mutated := make([]rune, len(r))
		copy(mutated, r)
		if mutated[i] == 'x' {
			mutated[i] = 'y'
		} else {
			mutated[i] = 'x'
		}
		if string(mutated) == s {
			return true
		}
		return Levenshtein(s, string(mutated)) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
