// Package victim implements the organic-user agents: routine logins and
// mail activity (the background traffic hijackers blend into, §5.1/§8.1),
// reactions to scams and phishing landing in their inboxes (spam reports —
// the +39% report spike of §5.3), and hijack discovery leading to recovery
// claims — via proactive notifications, lockout discovery at the next
// login, or eventually noticing on their own (§6.2).
package victim

import (
	"time"

	"manualhijack/internal/auth"
	"manualhijack/internal/challenge"
	"manualhijack/internal/event"
	"manualhijack/internal/geo"
	"manualhijack/internal/identity"
	"manualhijack/internal/logstore"
	"manualhijack/internal/mail"
	"manualhijack/internal/randx"
	"manualhijack/internal/recovery"
	"manualhijack/internal/simtime"
)

// Config tunes organic-user behavior.
type Config struct {
	// MeanLoginInterval is the mean time between a user's sessions.
	MeanLoginInterval time.Duration
	// ActiveShare is the fraction of the population that logs in at all
	// during the window (the rest are dormant).
	ActiveShare float64
	// SpamReportRate is the chance a recipient reports a scam/phish
	// delivery.
	SpamReportRate float64
	// OrganicReportRate is the (small) chance organic mail gets reported —
	// the noise that forces the paper's manual curation of Dataset 1.
	OrganicReportRate float64
	// NotificationReactRate is the chance a notified owner reacts promptly.
	NotificationReactRate float64
	// NotificationReactDelay is the mean prompt-reaction delay.
	NotificationReactDelay time.Duration
	// LockoutRealizeDelay is the mean time from a failed owner login to
	// filing a claim.
	LockoutRealizeDelay time.Duration
	// TravelRate is the chance an organic session comes from an unusual
	// country (travel, VPNs) — the source of login-risk false positives
	// that §8.1's tuning discussion is about.
	TravelRate float64
	// ScamFallRate is the chance a plea recipient engages with a scam
	// (replies to the call for help — round one of the two-round flow
	// §5.4 describes).
	ScamFallRate float64
	// ScamPayRate is the chance an engaged recipient, whose reply reached
	// the criminal, completes the wire transfer.
	ScamPayRate float64
}

// DefaultConfig returns the study defaults.
func DefaultConfig() Config {
	return Config{
		MeanLoginInterval:      30 * time.Hour,
		ActiveShare:            0.75,
		SpamReportRate:         0.12,
		OrganicReportRate:      0.004,
		NotificationReactRate:  0.40,
		NotificationReactDelay: time.Hour,
		LockoutRealizeDelay:    4 * time.Hour,
		TravelRate:             0.03,
		ScamFallRate:           0.015,
		ScamPayRate:            0.45,
	}
}

// Manager drives every organic user. It implements auth.Notifier and
// hijacker.Listener.
type Manager struct {
	cfg   Config
	clock *simtime.Clock
	rng   *randx.Rand
	dir   *identity.Directory
	mail  *mail.Service
	auth  *auth.Service
	rec   *recovery.Service
	plan  *geo.IPPlan
	store *logstore.Store

	// knownPassword is what each owner believes their password is.
	knownPassword map[identity.AccountID]string
	// hijacks tracks ground-truth hijack anchors for latency measurement.
	hijacks map[identity.AccountID]*hijackInfo
	end     time.Time
}

type hijackInfo struct {
	start   time.Time
	flagged time.Time // first out-of-band notification (detection anchor)
	claimed bool
	crew    string
	// reactDecided fixes the owner's prompt-reaction coin flip: one draw
	// per hijack, not one per notification (a hijack triggers several).
	reactDecided bool
	reacts       bool
}

// NewManager assembles the organic-user population driver.
func NewManager(
	cfg Config,
	clock *simtime.Clock,
	rng *randx.Rand,
	dir *identity.Directory,
	mailSvc *mail.Service,
	authSvc *auth.Service,
	rec *recovery.Service,
	plan *geo.IPPlan,
	store *logstore.Store,
) *Manager {
	m := &Manager{
		cfg: cfg, clock: clock, rng: rng.Fork("victims"),
		dir: dir, mail: mailSvc, auth: authSvc, rec: rec, plan: plan,
		store:         store,
		knownPassword: make(map[identity.AccountID]string, dir.Len()),
		hijacks:       make(map[identity.AccountID]*hijackInfo),
	}
	dir.All(func(a *identity.Account) { m.knownPassword[a.ID] = a.Password })
	mailSvc.SetDeliveryHook(m.onDelivery)
	authSvc.SetNotifier(m)
	if rec != nil {
		rec.OnRecovered = func(acct identity.AccountID, newPassword string) {
			m.knownPassword[acct] = newPassword
			delete(m.hijacks, acct)
		}
	}
	return m
}

// Start schedules organic sessions for the active share of the population
// until end.
func (m *Manager) Start(end time.Time) {
	m.end = end
	m.dir.All(func(a *identity.Account) {
		if !m.rng.Bool(m.cfg.ActiveShare) {
			return
		}
		id := a.ID
		m.clock.After(m.rng.ExpDuration(m.cfg.MeanLoginInterval), func() { m.session(id) })
	})
}

// scheduleNext books the user's next session.
func (m *Manager) scheduleNext(id identity.AccountID) {
	next := m.clock.Now().Add(m.rng.ExpDuration(m.cfg.MeanLoginInterval))
	if next.After(m.end) {
		return
	}
	m.clock.Schedule(next, func() { m.session(id) })
}

// session runs one organic user session: login (discovering lockout if the
// password changed), a few mailbox actions, maybe a small send.
func (m *Manager) session(id identity.AccountID) {
	a := m.dir.Get(id)
	if a == nil {
		return
	}
	country := a.HomeCountry
	if m.rng.Bool(m.cfg.TravelRate) {
		country = randx.Pick(m.rng, geo.AllCountries())
	}
	res := m.auth.Login(auth.LoginReq{
		Account:   id,
		Password:  m.knownPassword[id],
		IP:        m.plan.Addr(m.rng, country),
		DeviceID:  ownerDevice(id),
		Principal: m.principal(a),
		Actor:     event.ActorOwner,
	})
	switch res.Outcome {
	case event.LoginWrongPassword, event.LoginChallengeFailed:
		// The real owner typing the right-but-stale password, or locked
		// out by hijacker 2SV: realization dawns.
		if m.knownPassword[id] != a.Password || a.LockedByPhone {
			m.clock.After(m.rng.ExpDuration(m.cfg.LockoutRealizeDelay), func() {
				m.fileClaim(id, "lockout")
			})
		}
		m.scheduleNext(id)
		return
	case event.LoginBlocked:
		// The account was disabled by anti-abuse systems (§6.1's other
		// recovery trigger): the owner contacts recovery.
		if a.DisabledByAnti {
			m.clock.After(m.rng.ExpDuration(m.cfg.LockoutRealizeDelay), func() {
				m.fileClaim(id, "suspended")
			})
		}
		m.scheduleNext(id)
		return
	}

	// Routine activity.
	sess := res.Session
	if m.rng.Bool(0.5) {
		m.mail.Search(id, randx.Pick(m.rng, mail.FillerKeywords), sess, event.ActorOwner)
	}
	// Owners occasionally configure redirections themselves — the noise
	// floor for the doppelganger detector (§5.4) and the behavioral model
	// (§8.1: "normal users also ... set up email filters").
	if m.rng.Bool(0.01) && a.SecondaryEmail != "" {
		m.mail.SetReplyTo(id, a.SecondaryEmail, sess, event.ActorOwner)
	}
	if m.rng.Bool(0.008) {
		m.mail.CreateFilter(id, mail.Filter{ToTrash: true}, sess, event.ActorOwner)
	}
	if m.rng.Bool(0.8) {
		m.mail.OpenFolder(id, event.FolderInbox, sess, event.ActorOwner)
	}
	if m.rng.Bool(0.05) {
		m.mail.OpenFolder(id, event.FolderStarred, sess, event.ActorOwner)
	}
	if len(a.Contacts) > 0 {
		sends := m.rng.Poisson(1.4)
		for i := 0; i < sends; i++ {
			n := 1 + m.rng.Intn(4)
			if n > len(a.Contacts) {
				n = len(a.Contacts)
			}
			m.mail.Send(mail.SendReq{
				FromAcct: id, FromAddr: a.Addr,
				Recipients: randx.Sample(m.rng, a.Contacts, n),
				Keywords:   []string{randx.Pick(m.rng, mail.FillerKeywords)},
				Class:      event.ClassOrganic, Session: sess, Actor: event.ActorOwner,
			})
		}
	}
	m.scheduleNext(id)
}

func (m *Manager) principal(a *identity.Account) challenge.Principal {
	var phones []geo.Phone
	if a.Phone != "" {
		phones = append(phones, a.Phone)
	}
	if a.TwoSVPhone != "" && !a.LockedByPhone {
		phones = append(phones, a.TwoSVPhone)
	}
	return challenge.Principal{Phones: phones, KnowledgeSkill: 0.85}
}

func ownerDevice(id identity.AccountID) string {
	return identity.DeviceFingerprint(id)
}

// PrimeRisk seeds the login-risk analyzer with each account's home
// country and usual device so the measurement window starts with warm
// baselines.
func (m *Manager) PrimeRisk() {
	an := m.auth.Analyzer()
	if an == nil {
		return
	}
	m.dir.All(func(a *identity.Account) {
		an.PrimeAccount(a.ID, a.HomeCountry, ownerDevice(a.ID))
	})
}

// onDelivery reacts to mail landing in a provider inbox: scams and phish
// get reported at SpamReportRate; a sliver of organic mail is reported too
// (the noise the paper had to curate away); and a small share of scam
// recipients engage with the plea.
func (m *Manager) onDelivery(rcpt identity.AccountID, msg *mail.Message) {
	if msg.Class == event.ClassScam {
		m.maybeEngageScam(rcpt, msg)
	}
	var report bool
	switch msg.Class {
	case event.ClassScam, event.ClassPhish, event.ClassLure, event.ClassSpamBulk:
		report = m.rng.Bool(m.cfg.SpamReportRate)
	case event.ClassOrganic:
		report = m.rng.Bool(m.cfg.OrganicReportRate)
	}
	if !report {
		return
	}
	id, from, fromAcct, class := msg.ID, msg.From, m.dir.Lookup(msg.From), msg.Class
	m.clock.After(m.rng.ExpDuration(4*time.Hour), func() {
		m.mail.ReportSpam(rcpt, id, from, fromAcct, class)
	})
}

// maybeEngageScam runs the two-round scam funnel (§5.3/§5.4): the plea
// recipient replies; the reply reaches the criminal via a doppelganger
// Reply-To, a forwarding filter, or retained account access (the victim
// has not recovered yet); the criminal's follow-up with transfer details
// sometimes converts to a wire.
func (m *Manager) maybeEngageScam(rcpt identity.AccountID, msg *mail.Message) {
	if !m.rng.Bool(m.cfg.ScamFallRate) {
		return
	}
	victimAcct := m.dir.Lookup(msg.From)
	if victimAcct == identity.None {
		return
	}
	replyTo, forwarded := msg.ReplyTo, msg.Forwarded
	m.clock.After(m.rng.ExpDuration(9*time.Hour), func() {
		via := "lost"
		switch {
		case replyTo != "":
			via = "replyto"
		case forwarded || m.mail.Mailbox(victimAcct).HasForwardingFilter():
			via = "filter"
		default:
			// Retained access: the owner hasn't recovered yet, so the
			// criminal can still read the mailbox.
			if info, ok := m.hijacks[victimAcct]; ok && info != nil {
				via = "access"
			}
		}
		reached := via != "lost"
		m.store.Append(event.ScamReply{
			Base: event.Base{Time: m.clock.Now()}, VictimAccount: victimAcct,
			Recipient: rcpt, ReachedHijacker: reached, Via: via,
		})
		if !reached || !m.rng.Bool(m.cfg.ScamPayRate) {
			return
		}
		crew := ""
		if info := m.hijacks[victimAcct]; info != nil {
			crew = info.crew
		}
		amount := m.rng.LogNormalMedian(600, 0.8)
		// Round two (transfer details) plus the pickup: one more day.
		m.clock.After(m.rng.ExpDuration(20*time.Hour), func() {
			m.store.Append(event.MoneyWired{
				Base: event.Base{Time: m.clock.Now()}, VictimAccount: victimAcct,
				Recipient: rcpt, Crew: crew, Amount: amount,
			})
		})
	})
}

// Notified implements auth.Notifier: the owner receives an out-of-band
// notification. If it signals changes the owner didn't make, a prompt
// reaction files a recovery claim (the paper credits these notifications
// for the fastest recoveries).
func (m *Manager) Notified(acct identity.AccountID, reason string) {
	a := m.dir.Get(acct)
	if a == nil {
		return
	}
	unexpected := m.knownPassword[acct] != a.Password || a.LockedByPhone
	if !unexpected {
		return // the owner made this change (or it's a blocked-login heads-up)
	}
	info := m.hijackState(acct)
	if info.flagged.IsZero() {
		info.flagged = m.clock.Now()
	}
	if !info.reactDecided {
		info.reactDecided = true
		info.reacts = m.rng.Bool(m.cfg.NotificationReactRate)
		if info.reacts {
			m.clock.After(m.rng.ExpDuration(m.cfg.NotificationReactDelay), func() {
				m.fileClaim(acct, "notification")
			})
		}
	}
}

// HijackEnded implements hijacker.Listener: records the ground-truth
// anchor, and for in-the-shadow hijacks (no lockout) gives the owner a
// chance to notice the strange sent mail eventually.
func (m *Manager) HijackEnded(crew string, acct identity.AccountID, hijackedAt time.Time, lockedOut, exploited bool) {
	info := m.hijackState(acct)
	info.start = hijackedAt
	info.crew = crew
	if !lockedOut && exploited && m.rng.Bool(0.35) {
		m.clock.After(m.rng.ExpDuration(48*time.Hour), func() {
			m.fileClaim(acct, "noticed")
		})
	}
}

func (m *Manager) hijackState(acct identity.AccountID) *hijackInfo {
	info := m.hijacks[acct]
	if info == nil {
		info = &hijackInfo{}
		m.hijacks[acct] = info
	}
	return info
}

// fileClaim routes to the recovery service with the latency anchors.
func (m *Manager) fileClaim(acct identity.AccountID, trigger string) {
	if m.rec == nil {
		return
	}
	info := m.hijackState(acct)
	if info.claimed {
		return
	}
	info.claimed = true
	now := m.clock.Now()
	hijackedAt := info.start
	if hijackedAt.IsZero() {
		hijackedAt = now
	}
	flaggedAt := info.flagged
	if flaggedAt.IsZero() {
		flaggedAt = now
	}
	m.rec.FileClaim(acct, trigger, hijackedAt, flaggedAt)
}
