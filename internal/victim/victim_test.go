package victim

import (
	"testing"
	"time"

	"manualhijack/internal/auth"
	"manualhijack/internal/event"
	"manualhijack/internal/geo"
	"manualhijack/internal/identity"
	"manualhijack/internal/logstore"
	"manualhijack/internal/mail"
	"manualhijack/internal/randx"
	"manualhijack/internal/recovery"
	"manualhijack/internal/simtime"
)

type fixture struct {
	clock *simtime.Clock
	log   *logstore.Store
	dir   *identity.Directory
	mail  *mail.Service
	auth  *auth.Service
	rec   *recovery.Service
	mgr   *Manager
}

func newFixture(t *testing.T, seed int64, n int) *fixture {
	t.Helper()
	clock := simtime.NewClock(simtime.Epoch)
	rng := randx.New(seed)
	idCfg := identity.DefaultConfig(simtime.Epoch)
	idCfg.N = n
	dir := identity.NewDirectory(rng, idCfg)
	log := logstore.New()
	plan := geo.NewIPPlan(4)
	mailSvc := mail.NewService(dir, clock, log)
	authSvc := auth.NewService(dir, clock, log, nil, nil, auth.Config{
		RiskEnabled: false, NotificationsEnabled: true,
	})
	rec := recovery.NewService(recovery.DefaultConfig(), clock, log, rng, dir, authSvc, mailSvc)
	mgr := NewManager(DefaultConfig(), clock, rng, dir, mailSvc, authSvc, rec, plan, log)
	return &fixture{clock: clock, log: log, dir: dir, mail: mailSvc, auth: authSvc, rec: rec, mgr: mgr}
}

func (f *fixture) run(d time.Duration) { f.clock.RunUntil(f.clock.Now().Add(d)) }

func TestOrganicSessions(t *testing.T) {
	f := newFixture(t, 1, 300)
	f.mgr.Start(simtime.Epoch.Add(14 * 24 * time.Hour))
	f.run(14 * 24 * time.Hour)

	logins := logstore.Select[event.Login](f.log)
	if len(logins) < 1000 {
		t.Fatalf("organic logins = %d, want plenty", len(logins))
	}
	for _, l := range logins {
		if l.Actor != event.ActorOwner {
			t.Fatalf("unexpected actor %s", l.Actor)
		}
		if l.Outcome != event.LoginSuccess {
			t.Fatalf("organic login failed: %+v", l)
		}
	}
	if len(logstore.Select[event.MessageSent](f.log)) == 0 {
		t.Fatal("no organic mail sent")
	}
}

func TestScamDeliveryTriggersReports(t *testing.T) {
	f := newFixture(t, 2, 500)
	// Deliver scams to many accounts directly.
	sender := f.dir.Get(1)
	var rcpts []identity.Address
	for i := 2; i <= 400; i++ {
		rcpts = append(rcpts, f.dir.Get(identity.AccountID(i)).Addr)
	}
	f.mail.Send(mail.SendReq{
		FromAcct: sender.ID, FromAddr: sender.Addr, Recipients: rcpts,
		Class: event.ClassScam, Actor: event.ActorHijacker,
	})
	f.run(3 * 24 * time.Hour)

	reports := logstore.Select[event.SpamReported](f.log)
	rate := float64(len(reports)) / float64(len(rcpts))
	if rate < 0.06 || rate > 0.20 {
		t.Fatalf("report rate = %.3f (n=%d), want ~0.12", rate, len(reports))
	}
	for _, r := range reports {
		if r.Class != event.ClassScam || r.FromAcct != sender.ID {
			t.Fatalf("report = %+v", r)
		}
	}
}

func TestOrganicMailRarelyReported(t *testing.T) {
	f := newFixture(t, 3, 500)
	sender := f.dir.Get(1)
	var rcpts []identity.Address
	for i := 2; i <= 500; i++ {
		rcpts = append(rcpts, f.dir.Get(identity.AccountID(i)).Addr)
	}
	f.mail.Send(mail.SendReq{
		FromAcct: sender.ID, FromAddr: sender.Addr, Recipients: rcpts,
		Class: event.ClassOrganic, Actor: event.ActorOwner,
	})
	f.run(3 * 24 * time.Hour)
	if n := len(logstore.Select[event.SpamReported](f.log)); n > 10 {
		t.Fatalf("organic reports = %d, want near zero", n)
	}
}

func TestLockoutDiscoveryAndRecovery(t *testing.T) {
	f := newFixture(t, 4, 200)
	var victims []*identity.Account
	f.dir.All(func(x *identity.Account) {
		if x.Phone != "" && len(victims) < 20 {
			victims = append(victims, x)
		}
	})
	f.mgr.Start(simtime.Epoch.Add(30 * 24 * time.Hour))
	// Hijackers change the passwords (lockout) at day 1. Owners discover
	// via notification or at their next organic login.
	f.run(24 * time.Hour)
	hijacked := map[identity.AccountID]bool{}
	for _, a := range victims {
		f.mgr.HijackEnded("crew-x", a.ID, f.clock.Now(), true, true)
		f.auth.ChangePassword(a.ID, "stolen", 99, event.ActorHijacker)
		hijacked[a.ID] = true
	}
	f.run(29 * 24 * time.Hour)

	filed := logstore.Select[event.ClaimFiled](f.log)
	if len(filed) < 10 {
		t.Fatalf("claims = %d, want most of the 20 locked-out owners to file", len(filed))
	}
	for _, c := range filed {
		if !hijacked[c.Account] {
			t.Fatalf("claim from non-hijacked account %d", c.Account)
		}
	}
	resolved := logstore.SelectWhere(f.log, func(r event.ClaimResolved) bool { return r.Success })
	if len(resolved) == 0 {
		t.Fatal("no claim succeeded (SMS on file should succeed ~81%)")
	}
	for _, r := range resolved {
		if f.dir.Get(r.Account).Password == "stolen" {
			t.Fatal("password still hijacker's after recovery")
		}
	}
}

func TestNotificationReactionIsFast(t *testing.T) {
	// With a large population of hijacks, notification-driven claims
	// should often land within the hour.
	f := newFixture(t, 5, 2000)
	f.mgr.Start(simtime.Epoch.Add(10 * 24 * time.Hour))
	f.run(24 * time.Hour)
	hijackAt := f.clock.Now()
	count := 0
	f.dir.All(func(a *identity.Account) {
		if a.Phone == "" || count >= 300 {
			return
		}
		count++
		f.mgr.HijackEnded("crew-x", a.ID, hijackAt, true, true)
		f.auth.ChangePassword(a.ID, "stolen", 99, event.ActorHijacker)
	})
	f.run(9 * 24 * time.Hour)

	fast := 0
	claims := logstore.SelectWhere(f.log, func(c event.ClaimFiled) bool { return c.Trigger == "notification" })
	for _, c := range claims {
		if c.When().Sub(hijackAt) <= 2*time.Hour {
			fast++
		}
	}
	if len(claims) < 100 {
		t.Fatalf("notification claims = %d, want many of 300", len(claims))
	}
	if float64(fast)/float64(len(claims)) < 0.5 {
		t.Fatalf("fast notification claims = %d/%d, want most within 2h", fast, len(claims))
	}
}

func TestOwnerOwnChangesDoNotTriggerClaims(t *testing.T) {
	f := newFixture(t, 6, 50)
	var a *identity.Account
	f.dir.All(func(x *identity.Account) {
		if a == nil && x.Phone != "" {
			a = x
		}
	})
	// Owner changes their own password; manager learns it via... the
	// notification arrives but knownPassword check: simulate the owner
	// updating their password through the manager-aware path.
	f.mgr.knownPassword[a.ID] = "my-new-password"
	f.auth.ChangePassword(a.ID, "my-new-password", 1, event.ActorOwner)
	f.run(7 * 24 * time.Hour)
	if n := len(logstore.Select[event.ClaimFiled](f.log)); n != 0 {
		t.Fatalf("owner's own change produced %d claims", n)
	}
}

func TestShadowHijackSometimesNoticed(t *testing.T) {
	f := newFixture(t, 7, 2000)
	hijackAt := simtime.Epoch
	for i := 1; i <= 500; i++ {
		f.mgr.HijackEnded("crew-x", identity.AccountID(i), hijackAt, false, true)
	}
	f.run(30 * 24 * time.Hour)
	claims := logstore.SelectWhere(f.log, func(c event.ClaimFiled) bool { return c.Trigger == "noticed" })
	rate := float64(len(claims)) / 500
	if rate < 0.20 || rate > 0.50 {
		t.Fatalf("shadow-hijack notice rate = %.3f, want ~0.35", rate)
	}
}

func TestRecoveredPasswordKnownToOwner(t *testing.T) {
	f := newFixture(t, 8, 100)
	var a *identity.Account
	f.dir.All(func(x *identity.Account) {
		if a == nil && x.Phone != "" {
			a = x
		}
	})
	f.mgr.HijackEnded("crew-x", a.ID, f.clock.Now(), true, true)
	f.auth.ChangePassword(a.ID, "stolen", 99, event.ActorHijacker)
	f.run(30 * 24 * time.Hour)
	resolved := logstore.SelectWhere(f.log, func(r event.ClaimResolved) bool { return r.Success })
	if len(resolved) == 0 {
		t.Skip("recovery did not succeed in this seed")
	}
	if f.mgr.knownPassword[a.ID] != f.dir.Get(a.ID).Password {
		t.Fatal("owner does not know the recovered password")
	}
}

func TestScamFunnel(t *testing.T) {
	f := newFixture(t, 9, 2000)
	sender := f.dir.Get(1)
	// Register the hijack so replies can route via retained access.
	f.mgr.HijackEnded("ng-crew", sender.ID, f.clock.Now(), false, true)
	var rcpts []identity.Address
	for i := 2; i <= 1500; i++ {
		rcpts = append(rcpts, f.dir.Get(identity.AccountID(i)).Addr)
	}
	f.mail.Send(mail.SendReq{
		FromAcct: sender.ID, FromAddr: sender.Addr, Recipients: rcpts,
		Class: event.ClassScam, Actor: event.ActorHijacker,
	})
	f.run(10 * 24 * time.Hour)

	replies := logstore.Select[event.ScamReply](f.log)
	if len(replies) < 5 {
		t.Fatalf("scam replies = %d, want ~1.5%% of %d", len(replies), len(rcpts))
	}
	rate := float64(len(replies)) / float64(len(rcpts))
	if rate < 0.005 || rate > 0.04 {
		t.Fatalf("engage rate = %.4f, want ~0.015", rate)
	}
	reached := 0
	for _, r := range replies {
		if r.VictimAccount != sender.ID {
			t.Fatalf("reply attributed to %d", r.VictimAccount)
		}
		if r.ReachedHijacker {
			reached++
			if r.Via != "access" {
				t.Fatalf("via = %s, want access (no redirections configured)", r.Via)
			}
		}
	}
	if reached == 0 {
		t.Fatal("no reply reached the crew despite retained access")
	}
	wired := logstore.Select[event.MoneyWired](f.log)
	if len(wired) == 0 {
		t.Fatal("no payments despite reached replies")
	}
	for _, p := range wired {
		if p.Crew != "ng-crew" || p.Amount <= 0 {
			t.Fatalf("payment = %+v", p)
		}
	}
}

func TestScamReplyLostAfterRecovery(t *testing.T) {
	f := newFixture(t, 10, 500)
	sender := f.dir.Get(1)
	// No hijack registered (equivalent to already recovered): replies die.
	var rcpts []identity.Address
	for i := 2; i <= 500; i++ {
		rcpts = append(rcpts, f.dir.Get(identity.AccountID(i)).Addr)
	}
	f.mail.Send(mail.SendReq{
		FromAcct: sender.ID, FromAddr: sender.Addr, Recipients: rcpts,
		Class: event.ClassScam, Actor: event.ActorHijacker,
	})
	f.run(5 * 24 * time.Hour)
	for _, r := range logstore.Select[event.ScamReply](f.log) {
		if r.ReachedHijacker {
			t.Fatalf("reply reached crew without access or redirection: %+v", r)
		}
	}
	if n := len(logstore.Select[event.MoneyWired](f.log)); n != 0 {
		t.Fatalf("payments = %d without any route to the crew", n)
	}
}

func TestScamReplyViaReplyTo(t *testing.T) {
	f := newFixture(t, 11, 600)
	sender := f.dir.Get(1)
	f.mail.SetReplyTo(sender.ID, "doppel@evil.test", 1, event.ActorHijacker)
	var rcpts []identity.Address
	for i := 2; i <= 600; i++ {
		rcpts = append(rcpts, f.dir.Get(identity.AccountID(i)).Addr)
	}
	f.mail.Send(mail.SendReq{
		FromAcct: sender.ID, FromAddr: sender.Addr, Recipients: rcpts,
		Class: event.ClassScam, Actor: event.ActorHijacker,
	})
	f.run(5 * 24 * time.Hour)
	replies := logstore.Select[event.ScamReply](f.log)
	if len(replies) == 0 {
		t.Skip("no engagement in this seed")
	}
	for _, r := range replies {
		if !r.ReachedHijacker || r.Via != "replyto" {
			t.Fatalf("reply = %+v, want routed via replyto", r)
		}
	}
}
