#!/usr/bin/env bash
# Perf-trajectory harness (ISSUE 4). Runs the simulation-core benchmarks —
# scheduler (internal/simtime), log store (internal/logstore), end-to-end
# world and study engine (internal/core, root) — plus the scale-0.1 study
# wall-clock, and writes:
#
#   $TXT   benchstat-compatible text (feed two runs to `benchstat old new`)
#   $JSON  a machine-readable summary for the BENCH_<n>.json trajectory
#
# Usage:
#   scripts/bench.sh [TXT [JSON]]          # defaults: BENCH_dev.txt BENCH_dev.json
#
# Environment knobs (all optional):
#   BENCHTIME    per-bench duration/iterations for microbenches (default 2s;
#                CI smoke uses 1x)
#   COUNT        -count for benchstat variance (default 1)
#   STUDY_SCALE  hijackstudy -scale for the wall-clock probe (default 0.1)
#   STUDY_SEED   hijackstudy -seed (default 1)
#   SPILL_SCALE  hijackstudy -scale for the spill-mode probe (default:
#                STUDY_SCALE). The spill probe runs the same study with
#                -spill-dir, recording wall-clock and peak RSS for the
#                bounded-RAM segmented path; ISSUE 7's headline number is
#                SPILL_SCALE=1.0. Set SPILL_SCALE=0 to skip the probe.
#   SPILL_WRITERS  -spill-writers for the spill probe (default 2): the
#                background segment encode/write pool per era world.
#   SCAN_WORKERS -scan-workers for the spill probe (default 2): analysis
#                scan decode-ahead depth.
#   SPILL_GZIP   set to 1 to gzip the probe's segment files (default 0).
#                All three are recorded in the JSON's study_spill block.
#   SERVE_REPLAY set to 1 to also run the riskd replay-throughput sweep
#                (seed-7 dump through a live riskd at workers {1,4} ×
#                batch {off,64}); adds a "serving_replay" block to $JSON.
#                Default 0 — it costs ~1 min and needs a free port.
#   SERVE_PORT   port for the replay sweep's riskd (default 8099)
#
# The checked-in BENCH_<n>.json trajectory files additionally carry a
# hand-recorded "baseline" block with the pre-PR numbers; regenerating one
# with this script refreshes only the current measurements, so merge the
# baseline back in when updating a trajectory file.
set -euo pipefail
cd "$(dirname "$0")/.."

TXT="${1:-BENCH_dev.txt}"
JSON="${2:-BENCH_dev.json}"
BENCHTIME="${BENCHTIME:-2s}"
COUNT="${COUNT:-1}"
STUDY_SCALE="${STUDY_SCALE:-0.1}"
STUDY_SEED="${STUDY_SEED:-1}"
SPILL_SCALE="${SPILL_SCALE:-$STUDY_SCALE}"
SPILL_WRITERS="${SPILL_WRITERS:-2}"
SCAN_WORKERS="${SCAN_WORKERS:-2}"
SPILL_GZIP="${SPILL_GZIP:-0}"
SERVE_REPLAY="${SERVE_REPLAY:-0}"
SERVE_PORT="${SERVE_PORT:-8099}"

: > "$TXT"

echo "== simtime scheduler benches (benchtime=$BENCHTIME)" >&2
go test -run '^$' -bench 'BenchmarkClock' -benchtime "$BENCHTIME" -count "$COUNT" \
    ./internal/simtime/ | tee -a "$TXT"

echo "== logstore benches (benchtime=$BENCHTIME)" >&2
go test -run '^$' -bench 'BenchmarkAppend|BenchmarkSeal$|BenchmarkSelectIndexed|BenchmarkBetweenIndexed|BenchmarkKindCountsIndexed' \
    -benchtime "$BENCHTIME" -count "$COUNT" ./internal/logstore/ | tee -a "$TXT"

echo "== serving pipeline + wire codec benches (benchtime=$BENCHTIME)" >&2
go test -run '^$' -bench 'BenchmarkServeScore|BenchmarkScoreWire' -benchtime "$BENCHTIME" -count "$COUNT" \
    ./internal/serve/ | tee -a "$TXT"

echo "== world + study engine benches" >&2
go test -run '^$' -bench 'BenchmarkWorldRun' -benchtime 5x -count "$COUNT" \
    ./internal/core/ | tee -a "$TXT"
go test -run '^$' -bench 'BenchmarkStudyParallel' -benchtime 1x -count "$COUNT" \
    . | tee -a "$TXT"

# Optional: replay-throughput sweep through a live riskd. Each mode gets a
# fresh riskd (replay evolves analyzer state; parity needs a clean slate)
# and must finish with zero mismatches — this measures only correct runs.
REPLAY_SWEEP_DIR=""
if [ "$SERVE_REPLAY" = "1" ]; then
    echo "== serving replay sweep (seed-7 dump, workers {1,4} x batch {0,64}, port $SERVE_PORT)" >&2
    REPLAY_SWEEP_DIR=$(mktemp -d)
    go build -o "$REPLAY_SWEEP_DIR/hijacksim" ./cmd/hijacksim
    go build -o "$REPLAY_SWEEP_DIR/riskd" ./cmd/riskd
    go build -o "$REPLAY_SWEEP_DIR/riskload" ./cmd/riskload
    "$REPLAY_SWEEP_DIR/hijacksim" -seed 7 -pop 2000 -days 10 -decoys 40 \
        -events "$REPLAY_SWEEP_DIR/world.ndjson.gz"
    for mode in "1 0" "4 0" "1 64" "4 64"; do
        set -- $mode
        w=$1; b=$2
        "$REPLAY_SWEEP_DIR/riskd" -addr "127.0.0.1:$SERVE_PORT" -seed 7 -pop 2000 -decoys 40 \
            2> "$REPLAY_SWEEP_DIR/riskd_w${w}_b${b}.log" &
        riskd_pid=$!
        for _ in $(seq 1 100); do
            curl -sf "http://127.0.0.1:$SERVE_PORT/v1/healthz" > /dev/null 2>&1 && break
            sleep 0.1
        done
        "$REPLAY_SWEEP_DIR/riskload" -addr "http://127.0.0.1:$SERVE_PORT" \
            -replay "$REPLAY_SWEEP_DIR/world.ndjson.gz" -workers "$w" -batch "$b" \
            -json "$REPLAY_SWEEP_DIR/replay_w${w}_b${b}.json"
        kill -TERM "$riskd_pid"
        wait "$riskd_pid"
        grep -q 'drained cleanly' "$REPLAY_SWEEP_DIR/riskd_w${w}_b${b}.log"
    done
fi

echo "== study wall-clock (scale=$STUDY_SCALE seed=$STUDY_SEED)" >&2
go build -o /tmp/hijackstudy.bench ./cmd/hijackstudy
STUDY_OUT=$(mktemp)
start_ms=$(date +%s%3N)
/tmp/hijackstudy.bench -seed "$STUDY_SEED" -scale "$STUDY_SCALE" > "$STUDY_OUT"
end_ms=$(date +%s%3N)
study_s=$(awk -v a="$start_ms" -v b="$end_ms" 'BEGIN { printf "%.3f", (b - a) / 1000 }')
study_rss=$(awk '/^peak-rss-mib:/ { print $2 }' "$STUDY_OUT"); study_rss="${study_rss:-0}"
rm -f "$STUDY_OUT"
echo "study wall-clock: ${study_s}s peak-rss: ${study_rss}MiB (scale=$STUDY_SCALE)" >&2

# Spill-mode probe: the same study through the spill-to-disk segmented
# log (bounded RAM, byte-identical report). Records the wall-clock tax
# and the peak-RSS saving of the segmented path.
spill_s=0; spill_rss=0
if [ "$SPILL_SCALE" != "0" ]; then
    echo "== study wall-clock, spill mode (scale=$SPILL_SCALE seed=$STUDY_SEED writers=$SPILL_WRITERS scan-workers=$SCAN_WORKERS gzip=$SPILL_GZIP)" >&2
    SPILL_TMP=$(mktemp -d)
    gzip_flag=""
    [ "$SPILL_GZIP" = "1" ] && gzip_flag="-segment-gzip"
    start_ms=$(date +%s%3N)
    /tmp/hijackstudy.bench -seed "$STUDY_SEED" -scale "$SPILL_SCALE" \
        -spill-writers "$SPILL_WRITERS" -scan-workers "$SCAN_WORKERS" $gzip_flag \
        -spill-dir "$SPILL_TMP/segs" > "$SPILL_TMP/out.txt"
    end_ms=$(date +%s%3N)
    spill_s=$(awk -v a="$start_ms" -v b="$end_ms" 'BEGIN { printf "%.3f", (b - a) / 1000 }')
    spill_rss=$(awk '/^peak-rss-mib:/ { print $2 }' "$SPILL_TMP/out.txt"); spill_rss="${spill_rss:-0}"
    rm -rf "$SPILL_TMP"
    echo "spill study wall-clock: ${spill_s}s peak-rss: ${spill_rss}MiB (scale=$SPILL_SCALE)" >&2
fi

# Summarize the benchstat text as JSON. Multiple -count runs of the same
# benchmark are averaged.
awk -v study_s="$study_s" -v scale="$STUDY_SCALE" -v study_rss="$study_rss" \
    -v spill_s="$spill_s" -v spill_scale="$SPILL_SCALE" -v spill_rss="$spill_rss" \
    -v spill_writers="$SPILL_WRITERS" -v scan_workers="$SCAN_WORKERS" -v spill_gzip="$SPILL_GZIP" \
    -v commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
    -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip the GOMAXPROCS suffix
    n[name]++
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op")     ns[name]     += $i
        if ($(i+1) == "B/op")      bytes[name]  += $i
        if ($(i+1) == "allocs/op") allocs[name] += $i
    }
}
END {
    printf "{\n"
    printf "  \"commit\": \"%s\",\n", commit
    printf "  \"date\": \"%s\",\n", date
    printf "  \"benchmarks\": {\n"
    count = 0
    for (name in n) count++
    i = 0
    for (name in n) {
        i++
        printf "    \"%s\": {\"ns_op\": %.1f", name, ns[name] / n[name]
        if (name in bytes)  printf ", \"b_op\": %.0f", bytes[name] / n[name]
        if (name in allocs) printf ", \"allocs_op\": %.3f", allocs[name] / n[name]
        printf "}%s\n", (i < count ? "," : "")
    }
    printf "  },\n"
    printf "  \"study\": {\"scale\": %s, \"wallclock_s\": %s, \"peak_rss_mib\": %s}", scale, study_s, study_rss
    if (spill_scale != "0")
        printf ",\n  \"study_spill\": {\"scale\": %s, \"wallclock_s\": %s, \"peak_rss_mib\": %s, \"writers\": %s, \"scan_workers\": %s, \"gzip\": %s}", \
            spill_scale, spill_s, spill_rss, spill_writers, scan_workers, (spill_gzip == "1" ? "true" : "false")
    printf "\n}\n"
}' "$TXT" > "$JSON"

if [ -n "$REPLAY_SWEEP_DIR" ]; then
    python3 - "$JSON" "$REPLAY_SWEEP_DIR" <<'EOF'
import json, sys
out_path, sweep = sys.argv[1], sys.argv[2]
doc = json.load(open(out_path))
modes = {}
for w in (1, 4):
    for b in (0, 64):
        r = json.load(open(f"{sweep}/replay_w{w}_b{b}.json"))
        rep = r["replay"]
        assert rep["mismatches"] == 0, rep
        modes[f"workers{w}_batch{b}"] = {
            "qps_achieved": round(r["qps_achieved"], 1),
            "duration_s": round(r["duration_s"], 3),
            "scored": rep["scored"],
            "http_requests": rep["http_requests"],
        }
doc["serving_replay"] = modes
json.dump(doc, open(out_path, "w"), indent=2)
open(out_path, "a").write("\n")
EOF
    rm -rf "$REPLAY_SWEEP_DIR"
fi

echo "wrote $TXT and $JSON" >&2
