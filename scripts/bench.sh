#!/usr/bin/env bash
# Perf-trajectory harness (ISSUE 4). Runs the simulation-core benchmarks —
# scheduler (internal/simtime), log store (internal/logstore), end-to-end
# world and study engine (internal/core, root) — plus the scale-0.1 study
# wall-clock, and writes:
#
#   $TXT   benchstat-compatible text (feed two runs to `benchstat old new`)
#   $JSON  a machine-readable summary for the BENCH_<n>.json trajectory
#
# Usage:
#   scripts/bench.sh [TXT [JSON]]          # defaults: BENCH_dev.txt BENCH_dev.json
#
# Environment knobs (all optional):
#   BENCHTIME    per-bench duration/iterations for microbenches (default 2s;
#                CI smoke uses 1x)
#   COUNT        -count for benchstat variance (default 1)
#   STUDY_SCALE  hijackstudy -scale for the wall-clock probe (default 0.1)
#   STUDY_SEED   hijackstudy -seed (default 1)
#
# The checked-in BENCH_<n>.json trajectory files additionally carry a
# hand-recorded "baseline" block with the pre-PR numbers; regenerating one
# with this script refreshes only the current measurements, so merge the
# baseline back in when updating a trajectory file.
set -euo pipefail
cd "$(dirname "$0")/.."

TXT="${1:-BENCH_dev.txt}"
JSON="${2:-BENCH_dev.json}"
BENCHTIME="${BENCHTIME:-2s}"
COUNT="${COUNT:-1}"
STUDY_SCALE="${STUDY_SCALE:-0.1}"
STUDY_SEED="${STUDY_SEED:-1}"

: > "$TXT"

echo "== simtime scheduler benches (benchtime=$BENCHTIME)" >&2
go test -run '^$' -bench 'BenchmarkClock' -benchtime "$BENCHTIME" -count "$COUNT" \
    ./internal/simtime/ | tee -a "$TXT"

echo "== logstore benches (benchtime=$BENCHTIME)" >&2
go test -run '^$' -bench 'BenchmarkAppend|BenchmarkSeal$|BenchmarkSelectIndexed|BenchmarkBetweenIndexed|BenchmarkKindCountsIndexed' \
    -benchtime "$BENCHTIME" -count "$COUNT" ./internal/logstore/ | tee -a "$TXT"

echo "== serving pipeline benches (benchtime=$BENCHTIME)" >&2
go test -run '^$' -bench 'BenchmarkServeScore' -benchtime "$BENCHTIME" -count "$COUNT" \
    ./internal/serve/ | tee -a "$TXT"

echo "== world + study engine benches" >&2
go test -run '^$' -bench 'BenchmarkWorldRun' -benchtime 5x -count "$COUNT" \
    ./internal/core/ | tee -a "$TXT"
go test -run '^$' -bench 'BenchmarkStudyParallel' -benchtime 1x -count "$COUNT" \
    . | tee -a "$TXT"

echo "== study wall-clock (scale=$STUDY_SCALE seed=$STUDY_SEED)" >&2
go build -o /tmp/hijackstudy.bench ./cmd/hijackstudy
start_ms=$(date +%s%3N)
/tmp/hijackstudy.bench -seed "$STUDY_SEED" -scale "$STUDY_SCALE" > /dev/null
end_ms=$(date +%s%3N)
study_s=$(awk -v a="$start_ms" -v b="$end_ms" 'BEGIN { printf "%.3f", (b - a) / 1000 }')
echo "study wall-clock: ${study_s}s (scale=$STUDY_SCALE)" >&2

# Summarize the benchstat text as JSON. Multiple -count runs of the same
# benchmark are averaged.
awk -v study_s="$study_s" -v scale="$STUDY_SCALE" \
    -v commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
    -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip the GOMAXPROCS suffix
    n[name]++
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op")     ns[name]     += $i
        if ($(i+1) == "B/op")      bytes[name]  += $i
        if ($(i+1) == "allocs/op") allocs[name] += $i
    }
}
END {
    printf "{\n"
    printf "  \"commit\": \"%s\",\n", commit
    printf "  \"date\": \"%s\",\n", date
    printf "  \"benchmarks\": {\n"
    count = 0
    for (name in n) count++
    i = 0
    for (name in n) {
        i++
        printf "    \"%s\": {\"ns_op\": %.1f", name, ns[name] / n[name]
        if (name in bytes)  printf ", \"b_op\": %.0f", bytes[name] / n[name]
        if (name in allocs) printf ", \"allocs_op\": %.3f", allocs[name] / n[name]
        printf "}%s\n", (i < count ? "," : "")
    }
    printf "  },\n"
    printf "  \"study\": {\"scale\": %s, \"wallclock_s\": %s}\n", scale, study_s
    printf "}\n"
}' "$TXT" > "$JSON"

echo "wrote $TXT and $JSON" >&2
